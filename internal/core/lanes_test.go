package core

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"parade/internal/hlrc"
	"parade/internal/netsim"
	"parade/internal/obs"
	"parade/internal/sim"
)

// laneWorkload is a representative program exercising every subsystem
// the lane refactor touches: serial allocations, fork-join regions,
// static and dynamic loops over DSM arrays, hybrid and SDSM directives,
// singles, and the tasking runtime with cross-node steals.
func laneWorkload(c *Cluster) func(*Thread) {
	arr := c.AllocF64(256)
	total := c.ScalarVar("total")
	return func(m *Thread) {
		total.Init(m, 0)
		m.Parallel(func(tc *Thread) {
			tc.For(0, arr.Len(), func(i int) {
				arr.Set(tc, i, float64(i))
			}, WithIterCost(200*sim.Nanosecond))
			sum := tc.Reduce("s1", OpSum, arr.Get(tc, tc.GID()))
			tc.Critical("c1", []*Scalar{total}, func() { total.Add(tc, sum) })
			tc.Single("init", total, func() { total.Set(tc, total.Get(tc)+1) })
			tc.For(0, 64, func(i int) {
				arr.Set(tc, i%arr.Len(), arr.Get(tc, i%arr.Len())+1)
			}, WithSchedule(Dynamic, 8))
			// Imbalanced spawn pattern: node 0's threads create all the
			// tasks, so completion requires cross-node steals in any
			// multi-node configuration.
			if tc.NodeID() == 0 {
				for k := 0; k < 4*tc.NumThreads(); k++ {
					k := k
					tc.Task(func(e *Thread) float64 {
						e.Compute(2 * sim.Microsecond)
						return float64(k)
					})
				}
			}
			got := tc.Taskwait()
			tc.Atomic(total, got/float64(tc.NumThreads()))
		})
	}
}

// runLaneWorkload executes the workload under cfg and returns its report.
func runLaneWorkload(t *testing.T, cfg Config) Report {
	t.Helper()
	rep, err := Run(cfg, func(m *Thread) {
		// Allocation happens inside the program (master serial context) —
		// Run does not expose the cluster before executing.
		laneWorkload(m.Cluster())(m)
	})
	if err != nil {
		t.Fatalf("run failed: %v", err)
	}
	return rep
}

// reportsEqual compares every deterministic field of two reports.
func reportsEqual(t *testing.T, a, b Report, la, lb string) {
	t.Helper()
	if a.Time != b.Time {
		t.Errorf("Time differs: %s=%v %s=%v", la, a.Time, lb, b.Time)
	}
	if a.MemHash != b.MemHash {
		t.Errorf("MemHash differs: %s=%#x %s=%#x", la, a.MemHash, lb, b.MemHash)
	}
	if a.Counters != b.Counters {
		t.Errorf("Counters differ:\n%s: %+v\n%s: %+v", la, a.Counters, lb, b.Counters)
	}
	for i := range a.CPUBusy {
		if a.CPUBusy[i] != b.CPUBusy[i] {
			t.Errorf("CPUBusy[%d] differs: %s=%v %s=%v", i, la, a.CPUBusy[i], lb, b.CPUBusy[i])
		}
	}
}

func laneCfg(nodes, tpn, lanes int) Config {
	return Config{
		Nodes: nodes, ThreadsPerNode: tpn, CPUsPerNode: 2,
		HomeMigration: true, Lanes: lanes, Seed: 7,
	}.WithDefaults()
}

// TestLaneWorkerCountIdentity is the tentpole invariant: the report is
// bit-identical whether the lanes execute serially (Lanes=1) or with
// maximum host parallelism, in both execution modes.
func TestLaneWorkerCountIdentity(t *testing.T) {
	for _, mode := range []Mode{Hybrid, SDSM} {
		base := laneCfg(4, 2, 1)
		base.Mode = mode
		r1 := runLaneWorkload(t, base)

		for _, lanes := range []int{2, 4, 16} {
			cfg := laneCfg(4, 2, lanes)
			cfg.Mode = mode
			rN := runLaneWorkload(t, cfg)
			reportsEqual(t, r1, rN, "lanes=1", "lanes=N")
		}
	}
}

// TestLaneGOMAXPROCSIdentity pins the host scheduler to one CPU and then
// releases it: the virtual outcome must not move.
func TestLaneGOMAXPROCSIdentity(t *testing.T) {
	prev := runtime.GOMAXPROCS(1)
	r1 := runLaneWorkload(t, laneCfg(4, 2, 4))
	runtime.GOMAXPROCS(prev)
	rN := runLaneWorkload(t, laneCfg(4, 2, 4))
	reportsEqual(t, r1, rN, "GOMAXPROCS=1", "GOMAXPROCS=N")
}

// TestLaneChurnIdentity injects host-scheduler churn at every window
// boundary and checks that the report still matches the calm run: the
// canonical merge must make goroutine interleaving unobservable.
func TestLaneChurnIdentity(t *testing.T) {
	calm := runLaneWorkload(t, laneCfg(4, 2, 4))
	laneWindowChurn = true
	defer func() { laneWindowChurn = false }()
	churned := runLaneWorkload(t, laneCfg(4, 2, 4))
	reportsEqual(t, calm, churned, "calm", "churned")
}

// TestLaneFingerprintAcrossLaneCounts runs a DSM-heavy SDSM-mode program
// and compares the full shared-memory fingerprint across worker counts.
func TestLaneFingerprintAcrossLaneCounts(t *testing.T) {
	run := func(lanes int) Report {
		cfg := laneCfg(8, 1, lanes)
		cfg.Mode = SDSM
		rep, err := Run(cfg, func(m *Thread) {
			arr := m.Cluster().AllocF64(512)
			m.Parallel(func(tc *Thread) {
				for round := 0; round < 3; round++ {
					tc.For(0, arr.Len(), func(i int) {
						arr.Set(tc, i, arr.Get(tc, i)+float64(i+round))
					})
				}
			})
		})
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		return rep
	}
	r1 := run(1)
	for _, lanes := range []int{2, 8} {
		rN := run(lanes)
		if r1.MemHash != rN.MemHash {
			t.Errorf("StateFingerprint differs at lanes=%d: %#x vs %#x", lanes, r1.MemHash, rN.MemHash)
		}
		reportsEqual(t, r1, rN, "lanes=1", "lanes=N")
	}
}

// TestLaneRotatedLockIDs regression-tests the lock registry replicas.
// Critical is not collective, so threads may first-use lock sites in a
// gid-dependent order (node 0 starts its walk at lock 0, node 1 at
// lock 1, ...). First-use-order replica ids would map the same name to
// different locks on different nodes — broken mutual exclusion and
// silently lost increments. The name-derived ids must keep every
// increment (matching the legacy kernel's exact count) at any lane
// count, with bit-identical reports across counts.
func TestLaneRotatedLockIDs(t *testing.T) {
	const locks, iters, stride = 3, 5, 64
	for _, mode := range []Mode{Hybrid, SDSM} {
		run := func(lanes int) (Report, float64) {
			cfg := laneCfg(4, 1, lanes)
			cfg.Mode = mode
			var sum float64
			rep, err := Run(cfg, func(m *Thread) {
				arr := m.Cluster().AllocF64(locks * stride)
				m.Parallel(func(tc *Thread) {
					gid := tc.GID()
					for it := 0; it < iters; it++ {
						for k := 0; k < locks; k++ {
							// Each node walks the locks from its own offset,
							// so no two nodes first-use them in the same order.
							l := (gid + it + k) % locks
							tc.Critical(fmt.Sprintf("rot%d", l), nil, func() {
								tc.Compute(2 * sim.Microsecond)
								arr.Set(tc, l*stride, arr.Get(tc, l*stride)+1)
							})
						}
					}
					tc.Barrier()
					if tc.GID() == 0 {
						for k := 0; k < locks; k++ {
							sum += arr.Get(tc, k*stride)
						}
					}
				})
			})
			if err != nil {
				t.Fatalf("mode=%v lanes=%d: %v", mode, lanes, err)
			}
			return rep, sum
		}
		want := float64(4 * iters * locks)
		_, legacy := run(0)
		if legacy != want {
			t.Fatalf("mode=%v legacy kernel lost updates: sum=%v want=%v", mode, legacy, want)
		}
		r1, s1 := run(1)
		if s1 != want {
			t.Errorf("mode=%v lanes=1 lost updates: sum=%v want=%v", mode, s1, want)
		}
		for _, lanes := range []int{2, 4} {
			rN, sN := run(lanes)
			if sN != want {
				t.Errorf("mode=%v lanes=%d lost updates: sum=%v want=%v", mode, lanes, sN, want)
			}
			reportsEqual(t, r1, rN, "lanes=1", "lanes=N")
		}
	}
}

// TestLaneChaosIdentity attaches a lossy fault profile: the per-node RNG
// streams must make the fault schedule — and with it every counter and
// the final memory image — independent of the worker count.
func TestLaneChaosIdentity(t *testing.T) {
	run := func(lanes int) Report {
		cfg := laneCfg(4, 2, lanes)
		prof := netsim.ProfileChaos(99)
		cfg.Faults = &prof
		return runLaneWorkload(t, cfg)
	}
	r1 := run(1)
	rN := run(4)
	if r1.Counters.InjectedDrops == 0 && r1.Counters.InjectedDelays == 0 {
		t.Fatalf("chaos profile injected nothing (drops=%d delays=%d)",
			r1.Counters.InjectedDrops, r1.Counters.InjectedDelays)
	}
	reportsEqual(t, r1, rN, "lanes=1", "lanes=N")
}

// TestLaneConfigErrors checks the typed validation failures.
func TestLaneConfigErrors(t *testing.T) {
	var lce *LaneConfigError

	cfg := laneCfg(2, 1, 0)
	cfg.Lanes = -3
	if _, err := Run(cfg, func(m *Thread) {}); !errors.As(err, &lce) {
		t.Fatalf("Lanes=-3: want *LaneConfigError, got %v", err)
	}
	if lce.Lanes != -3 {
		t.Fatalf("error carries Lanes=%d, want -3", lce.Lanes)
	}

	cfg = laneCfg(2, 1, 2)
	cfg.Fabric = netsim.Fabric{Name: "zero-lat", BandwidthBps: 100 << 20}
	if _, err := Run(cfg, func(m *Thread) {}); !errors.As(err, &lce) {
		t.Fatalf("zero-latency fabric: want *LaneConfigError, got %v", err)
	}
}

// TestLaneMetricsReport verifies the per-lane utilization counters and
// the lane_sync_latency histogram reach the metrics registry.
func TestLaneMetricsReport(t *testing.T) {
	cfg := laneCfg(4, 2, 4)
	cfg.Obs = obs.New(cfg.Nodes)
	rep := runLaneWorkload(t, cfg)
	if rep.Obs == nil {
		t.Fatal("no metrics attached")
	}
	stats, windows, sync := rep.Obs.LaneReport()
	if len(stats) != cfg.Nodes {
		t.Fatalf("lane stats for %d lanes, want %d", len(stats), cfg.Nodes)
	}
	if windows == 0 {
		t.Fatal("no windows recorded")
	}
	var events uint64
	for _, ls := range stats {
		events += ls.Events
	}
	if events == 0 {
		t.Fatal("no events recorded in lane stats")
	}
	if sync.Count == 0 {
		t.Fatal("empty lane_sync_latency histogram")
	}
}

// TestLaneObsIdentity runs with the metrics registry attached at two
// worker counts and compares the folded per-node counters.
func TestLaneObsIdentity(t *testing.T) {
	run := func(lanes int) Report {
		cfg := laneCfg(4, 2, lanes)
		cfg.Obs = obs.New(cfg.Nodes)
		return runLaneWorkload(t, cfg)
	}
	r1, rN := run(1), run(4)
	m1, mN := r1.Obs, rN.Obs
	for node := 0; node < 4; node++ {
		a, b := m1.Node(node), mN.Node(node)
		if a != b {
			t.Errorf("node %d counters differ:\nlanes=1: %+v\nlanes=4: %+v", node, a, b)
		}
	}
}

// TestLaneCrashRecoveryIdentity arms a crash-stop/restart plan under
// lane mode (which switches the kernel to the relaxed single-worker
// regime) and checks that recovery completes and that the outcome is
// independent of the requested worker count. (Lane mode is its own
// deterministic schedule, not legacy's: the tasking runtime swaps load
// gossip for the quiescence vote, so legacy reports differ.)
func TestLaneCrashRecoveryIdentity(t *testing.T) {
	run := func(lanes int) Report {
		cfg := laneCfg(4, 1, lanes)
		cfg.Crash = &hlrc.CrashPlan{Events: []hlrc.CrashEvent{
			{Node: 1, Barrier: 2, Restart: true},
		}}
		return runLaneWorkload(t, cfg)
	}
	r1 := run(1)
	if r1.Counters.Crashes != 1 || r1.Counters.NodeRestarts != 1 {
		t.Fatalf("crash plan did not execute: crashes=%d restarts=%d",
			r1.Counters.Crashes, r1.Counters.NodeRestarts)
	}
	rN := run(4)
	reportsEqual(t, r1, rN, "lanes=1", "lanes=4")
}
