package core

import (
	"fmt"
	"sort"

	"parade/internal/dsm"
	"parade/internal/netsim"
	"parade/internal/sim"
)

// The dependence resolver: the piece that turns the fork-join task pool
// into a task graph. Tasks declare in/out/inout dependences on handles
// (addresses, named objects, or named sibling tasks); the resolver
// computes the predecessor edges at spawn time from the spawning
// context's program order — the OpenMP sibling-task rule — and holds a
// task out of the ready deques until every predecessor has completed.
//
// Determinism. Edges depend only on spawn order within one context
// (one thread's root tasks between joins, or one parent task's
// children), never on which node executed anything, so the graph is
// identical across steal schedules, fault profiles, crash schedules,
// and lane counts. Release bookkeeping lives on the spawning context's
// node (the origin): all siblings of a context are spawned from one
// thread, which runs on one node, so edge computation and release are
// lane-confined. A task executed remotely (stolen, or pinned to a
// device) reports completion to its origin with a control message; the
// origin's communication thread propagates the completion through the
// graph and releases newly-ready tasks into the origin's deque. Held
// tasks are counted live/spawned from the moment of spawn, so both
// termination machineries — the legacy live count and the lane-mode
// quiescence vote — wait for them with no extra state.
//
// Cycles. Pure data dependences cannot form a cycle (every edge points
// from an earlier spawn to a later one). DepTask references can: a
// reference to a not-yet-registered name holds the task until a sibling
// registers it (forward references are the point of task handles), and
// the closing edge can complete a circle. Registration therefore runs a
// reachability check and rejects the program with a *TaskCycleError —
// surfaced as the run error of core.Run (errors.As-matchable), with the
// partial report alongside. A name nobody ever registers resolves
// vacuously when the context closes: at Taskwait for root tasks, at the
// parent's completion for nested ones.
//
// Memory semantics. Graph edges are synchronization, so they carry
// release consistency exactly like the lock protocol: a tracked task's
// completion flushes its node's modifications home and produces write
// notices (the release), and those notices travel its outgoing edges —
// a successor applies them before its body runs, invalidating stale
// copies (the acquire). Inherited notices accumulate along paths, so
// visibility is transitive through the graph, and a successor spawned
// after its predecessor already finished inherits through the context's
// completed-task record. Without this, a consumer could read the stale
// pre-producer copy of a page its node cached earlier, and the result
// would depend on the steal schedule.

// TaskCycleError is the typed error a run aborts with when a depend
// clause set makes the task graph circular (only possible through
// DepTask references — data dependences follow spawn order and cannot
// cycle). Unwrap core.Run's error with errors.As to detect it.
type TaskCycleError struct {
	// Name is the task name whose registration closed the cycle.
	Name string
}

func (e *TaskCycleError) Error() string {
	return fmt.Sprintf("core: task dependence cycle through task name %q", e.Name)
}

// runAbort carries the cause a thread aborted the run with.
type runAbort struct {
	err error
}

// depState is one spawning context's dependence bookkeeping: the handle
// history (last writer and readers since, per handle), the registered
// task names, and the forward references awaiting registration. Roots
// keep it on the Thread (reset at Taskwait); nested tasks keep it on
// the parent task (closed when the parent's body returns).
type depState struct {
	lastWriter map[DepHandle]uint64   // handle -> id of the last Out/InOut task
	readers    map[DepHandle][]uint64 // handle -> In tasks since the last writer
	names      map[string]uint64      // WithTaskName registrations (last wins)
	pending    map[string][]uint64    // unregistered name -> held waiter ids

	// done keeps the outgoing write notices of this context's completed
	// tasks, so a successor spawned after its predecessor finished (no
	// graph entry left to edge to) still inherits visibility. Cleared
	// with the context at the join, where the barrier supersedes it.
	done map[uint64][]dsm.WriteNotice
}

func newDepState() *depState {
	return &depState{
		lastWriter: map[DepHandle]uint64{},
		readers:    map[DepHandle][]uint64{},
		names:      map[string]uint64{},
		pending:    map[string][]uint64{},
		done:       map[uint64][]dsm.WriteNotice{},
	}
}

// depNode is one tracked task's entry in its origin node's graph:
// outstanding predecessor count, successor edges, and the task object
// itself while held. Completed tasks are deleted from the graph — a
// missing entry reads as "already done", which also absorbs completion
// messages that arrive after a join cleared the context.
type depNode struct {
	preds  int
	succs  []uint64
	task   *task     // non-nil while held out of the deques
	ds     *depState // the spawning context, for the completed-task record
	heldAt sim.Time  // spawn instant, for the dep-wait latency histogram
}

// depContext returns the dependence state of t's current spawning
// context, creating it on first use.
func (t *Thread) depContext() *depState {
	if t.curTask != nil {
		if t.curTask.depState == nil {
			t.curTask.depState = newDepState()
		}
		return t.curTask.depState
	}
	if t.depState == nil {
		t.depState = newDepState()
	}
	return t.depState
}

// resolveDeps computes tk's predecessor edges from the spawning
// context's handle history, updates the history, registers tk's name,
// and reports whether tk must be held (outstanding predecessors). Runs
// yield-free on the spawning thread, so the whole graph mutation is
// atomic under the simulation kernel's one-runnable-goroutine rule.
func (t *Thread) resolveDeps(tk *task, cfg *taskConfig) bool {
	n := t.node
	ds := t.depContext()
	if n.depGraph == nil {
		n.depGraph = map[uint64]*depNode{}
	}
	dn := &depNode{ds: ds, heldAt: t.p.Now()}
	n.depGraph[tk.id] = dn

	seenPred := map[uint64]bool{}
	addPred := func(pid uint64) {
		if pid == tk.id || seenPred[pid] {
			return
		}
		seenPred[pid] = true
		pdn := n.depGraph[pid]
		if pdn == nil {
			// Predecessor already completed: no edge, but its interval's
			// write notices still order before tk.
			tk.notices = mergeNotices(tk.notices, ds.done[pid])
			return
		}
		pdn.succs = append(pdn.succs, tk.id)
		dn.preds++
	}

	// Collapse duplicate handles first (first-occurrence order, so edge
	// order is deterministic): a handle named under both In and Out/InOut
	// acts as inout.
	var order []DepHandle
	write := map[DepHandle]bool{}
	for _, d := range cfg.deps {
		if _, seen := write[d.h]; !seen {
			order = append(order, d.h)
		}
		write[d.h] = write[d.h] || d.kind != In
	}

	for _, h := range order {
		if h.kind == depHandleTask {
			if pid, ok := ds.names[h.name]; ok {
				addPred(pid)
			} else {
				// Forward reference: hold until a sibling registers the
				// name (or the context closes and it resolves vacuously).
				ds.pending[h.name] = append(ds.pending[h.name], tk.id)
				dn.preds++
			}
			continue
		}
		if w, ok := ds.lastWriter[h]; ok {
			addPred(w)
		}
		if write[h] {
			for _, r := range ds.readers[h] {
				addPred(r)
			}
			delete(ds.readers, h)
			ds.lastWriter[h] = tk.id
		} else {
			ds.readers[h] = append(ds.readers[h], tk.id)
		}
	}

	if tk.name != "" {
		t.registerTaskName(ds, tk)
	}
	// The graph entry stays even when tk starts ready: later siblings may
	// still add successor edges (tk is now a reader or last writer in the
	// handle history, or a named task). Completion deletes it.
	if dn.preds == 0 {
		return false
	}
	dn.task = tk
	return true
}

// registerTaskName binds tk's name in ds and resolves the forward
// references waiting on it — after checking that each closing edge
// keeps the graph acyclic. Re-registering a name rebinds it (later
// DepTask references see the newest task).
func (t *Thread) registerTaskName(ds *depState, tk *task) {
	n := t.node
	ds.names[tk.name] = tk.id
	waiters := ds.pending[tk.name]
	if len(waiters) == 0 {
		return
	}
	delete(ds.pending, tk.name)
	dn := n.depGraph[tk.id]
	for _, wid := range waiters {
		if wid == tk.id || n.depReachable(wid, tk.id) {
			t.abortRun(&TaskCycleError{Name: tk.name})
		}
		// The waiter's placeholder predecessor (counted when the forward
		// reference was recorded) becomes the real edge.
		dn.succs = append(dn.succs, wid)
	}
}

// depReachable reports whether `to` is reachable from `from` over
// successor edges of node n's graph.
func (n *node) depReachable(from, to uint64) bool {
	if from == to {
		return true
	}
	seen := map[uint64]bool{}
	var dfs func(id uint64) bool
	dfs = func(id uint64) bool {
		if id == to {
			return true
		}
		if seen[id] {
			return false
		}
		seen[id] = true
		dn := n.depGraph[id]
		if dn == nil {
			return false
		}
		for _, s := range dn.succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

// taskDone propagates a tracked task's completion through its origin
// node's graph: record the task's outgoing write notices in its
// context, decrement every successor's predecessor count, and release
// the newly ready. A missing entry means a join already cleared the
// context (a late completion message) — nothing can depend on the task
// anymore, so it is ignored.
func (c *Cluster) taskDone(p *sim.Proc, origin int, id uint64, notices []dsm.WriteNotice) {
	n := c.nodes[origin]
	dn := n.depGraph[id]
	if dn == nil {
		return
	}
	delete(n.depGraph, id)
	if dn.ds != nil && len(notices) > 0 {
		dn.ds.done[id] = notices
	}
	for _, sid := range dn.succs {
		c.depSatisfy(p, origin, sid, notices)
	}
}

// depSatisfy retires one predecessor of task id on the origin node,
// hands the task the predecessor's write notices, and releases it once
// no predecessors remain.
func (c *Cluster) depSatisfy(p *sim.Proc, origin int, id uint64, notices []dsm.WriteNotice) {
	n := c.nodes[origin]
	dn := n.depGraph[id]
	if dn == nil {
		return
	}
	dn.preds--
	c.cnt(origin).TaskDepsResolved++
	c.rec.DepResolved(origin)
	if dn.task != nil && len(notices) > 0 {
		dn.task.notices = mergeNotices(dn.task.notices, notices)
	}
	if dn.preds == 0 && dn.task != nil {
		tk := dn.task
		dn.task = nil
		c.cnt(origin).TasksReleased++
		c.rec.TaskReleased(dn.heldAt, p.Now(), origin)
		c.dispatchTask(p, origin, tk)
	}
}

// mergeNotices folds b into a with (page, modifier) dedup, keeping the
// result sorted so downstream application and wire contents are
// deterministic regardless of completion interleaving.
func mergeNotices(a, b []dsm.WriteNotice) []dsm.WriteNotice {
	if len(b) == 0 {
		return a
	}
	out := append(a, b...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Page != out[j].Page {
			return out[i].Page < out[j].Page
		}
		return out[i].Modifier < out[j].Modifier
	})
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// resolvePending vacuously satisfies every dangling forward reference
// of ds: called when the context closes and no sibling can register
// names anymore (Taskwait for a thread's roots, parent completion for
// nested tasks). Names resolve in sorted order for determinism.
func (c *Cluster) resolvePending(p *sim.Proc, origin int, ds *depState) {
	if ds == nil || len(ds.pending) == 0 {
		return
	}
	names := make([]string, 0, len(ds.pending))
	for name := range ds.pending {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		waiters := ds.pending[name]
		delete(ds.pending, name)
		for _, wid := range waiters {
			c.depSatisfy(p, origin, wid, nil)
		}
	}
}

// dispatchTask enqueues a ready task for execution: into the local
// deque, or pushed over the fabric to the device node it is pinned to.
func (c *Cluster) dispatchTask(p *sim.Proc, from int, tk *task) {
	if tk.pinned && tk.device != from {
		c.net.Send(p, &netsim.Message{
			From: from, To: tk.device, Kind: KindCtl, Type: ctlTaskPush,
			Bytes: taskDescBytes, Payload: tk,
		})
		return
	}
	c.nodes[from].enqueueTask(tk)
	if !c.lanes {
		c.taskWake()
	}
}

// handleTaskPush runs on the device's communication thread: enqueue the
// pushed (pinned or released-remote) task into the local deque.
func (c *Cluster) handleTaskPush(p *sim.Proc, nodeID int, m *netsim.Message) {
	tk := m.Payload.(*task)
	n := c.nodes[nodeID]
	n.cpu.Compute(p, serveCost)
	n.enqueueTask(tk)
	if !c.lanes {
		c.taskWake()
	}
}

// taskDoneMsg is the completion notification a remotely-executed
// tracked task sends to its origin node, carrying the task's outgoing
// write notices for its successors.
type taskDoneMsg struct {
	ID      uint64
	Notices []dsm.WriteNotice
}

// handleTaskDone runs on the origin's communication thread.
func (c *Cluster) handleTaskDone(p *sim.Proc, nodeID int, m *netsim.Message) {
	done := m.Payload.(taskDoneMsg)
	c.nodes[nodeID].cpu.Compute(p, serveCost)
	c.taskDone(p, nodeID, done.ID, done.Notices)
}

// enqueueTask inserts tk into the node's deque at its priority rank:
// the deque stays ascending in priority from head to tail, so local
// LIFO pops take the highest priority first and thieves (head) take the
// lowest. Equal priorities keep the historical order — newest at the
// tail — and the default priority 0 reduces to a plain append, so
// priority-free programs keep their exact deque behavior.
func (n *node) enqueueTask(tk *task) {
	q := n.taskq
	i := len(q)
	for i > 0 && q[i-1].prio > tk.prio {
		i--
	}
	q = append(q, nil)
	copy(q[i+1:], q[i:])
	q[i] = tk
	n.taskq = q
}

// abortRun records err as the run's cancellation cause and spins this
// thread in virtual time until the kernel's cancellation poll unwinds
// the run. core.Run returns an error matching ErrCanceled whose cause
// (errors.As) is err, alongside the partial report.
func (t *Thread) abortRun(err error) {
	t.c.abortErr.CompareAndSwap(nil, &runAbort{err: err})
	for {
		t.Compute(100 * sim.Microsecond)
	}
}
