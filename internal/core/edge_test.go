package core

import (
	"testing"

	"parade/internal/hlrc"
	"parade/internal/netsim"
	"parade/internal/sim"
)

// Edge cases and less-travelled paths of the runtime.

func TestSingleNodeSingleThread(t *testing.T) {
	cfg := Config{Nodes: 1, ThreadsPerNode: 1}
	ran := false
	rep := run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			if tc.NumThreads() != 1 || tc.GID() != 0 {
				t.Errorf("identity wrong: %v", tc)
			}
			ran = true
		})
	})
	if !ran {
		t.Fatal("region did not run")
	}
	if rep.Counters.Messages != 0 {
		t.Fatalf("1x1 cluster sent %d messages", rep.Counters.Messages)
	}
}

func TestI64ArrayAcrossNodes(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 1}
	var got int64
	run(t, cfg, func(m *Thread) {
		a := m.Cluster().AllocI64(64)
		m.Parallel(func(tc *Thread) {
			if tc.GID() == 1 {
				a.Set(tc, 3, -42)
			}
		})
		got = a.Get(m, 3)
	})
	if got != -42 {
		t.Fatalf("I64 read %d", got)
	}
}

func TestScalarInitHybridResetsAllReplicas(t *testing.T) {
	cfg := Config{Nodes: 4, ThreadsPerNode: 1, Mode: Hybrid}
	bad := 0
	run(t, cfg, func(m *Thread) {
		s := m.Cluster().ScalarVar("v")
		s.Init(m, 7)
		m.Parallel(func(tc *Thread) {
			if s.Get(tc) != 7 {
				bad++
			}
			// Accumulate from the initialized base.
			tc.Critical("c", []*Scalar{s}, func() { s.Add(tc, 1) })
			if s.Get(tc) != 11 {
				bad++
			}
		})
	})
	if bad != 0 {
		t.Fatalf("%d replicas saw wrong values after Init", bad)
	}
}

func TestReduceVecBothModes(t *testing.T) {
	for _, mode := range []Mode{Hybrid, SDSM} {
		cfg := Config{Nodes: 2, ThreadsPerNode: 2, Mode: mode}
		var got []float64
		run(t, cfg, func(m *Thread) {
			m.Parallel(func(tc *Thread) {
				v := tc.ReduceVec("vec", OpSum, []float64{1, float64(tc.GID()), 10})
				tc.Master(func() { got = v })
			})
		})
		if len(got) != 3 || got[0] != 4 || got[1] != 6 || got[2] != 40 {
			t.Fatalf("mode %v: ReduceVec = %v", mode, got)
		}
	}
}

func TestReduceVecRepeated(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 2, Mode: Hybrid}
	bad := 0
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			for r := 1; r <= 3; r++ {
				v := tc.ReduceVec("rep", OpSum, []float64{float64(r)})
				if v[0] != float64(4*r) {
					bad++
				}
			}
		})
	})
	if bad != 0 {
		t.Fatalf("%d wrong repeated vector reductions", bad)
	}
}

func TestSingleNilScalar(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 2, Mode: Hybrid}
	execs := 0
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			tc.Single("sideeffect", nil, func() { execs++ })
		})
	})
	if execs != 1 {
		t.Fatalf("nil-scalar single executed %d times", execs)
	}
}

func TestForCostHugePerIterStillCharges(t *testing.T) {
	cfg := Config{Nodes: 1, ThreadsPerNode: 1}
	var elapsed sim.Duration
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			start := tc.Now()
			// Per-iteration cost larger than the batching target: batch
			// size clamps to 1.
			tc.ForCostNowait(0, 3, 2*sim.Millisecond, func(i int) {})
			elapsed = sim.Duration(tc.Now() - start)
		})
	})
	if elapsed != 6*sim.Millisecond {
		t.Fatalf("charged %v, want 6ms", elapsed)
	}
}

func TestForEmptyAndReversedRanges(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 1}
	ran := 0
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			tc.For(5, 5, func(i int) { ran++ })
			tc.For(9, 3, func(i int) { ran++ })
		})
	})
	if ran != 0 {
		t.Fatalf("empty/reversed ranges ran %d iterations", ran)
	}
}

func TestForDynamicChunkLargerThanRange(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 1}
	count := 0
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			tc.ForDynamic("big", 0, 5, 100, 0, func(i int) { count++ })
		})
	})
	if count != 5 {
		t.Fatalf("ran %d iterations, want 5", count)
	}
}

func TestCustomQuantumAccepted(t *testing.T) {
	cfg := Config{Nodes: 1, ThreadsPerNode: 2, CPUsPerNode: 1, Quantum: 5 * sim.Millisecond}
	rep := run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) { tc.Compute(10 * sim.Millisecond) })
	})
	// Two threads x 10ms on one CPU: exactly 20ms of busy time.
	if rep.Time < sim.Duration(20*sim.Millisecond) {
		t.Fatalf("time %v too small for serialized compute", rep.Time)
	}
}

func TestTCPFabricSlowsCommunication(t *testing.T) {
	measure := func(cfg Config) sim.Duration {
		rep := run(t, cfg, func(m *Thread) {
			a := m.Cluster().AllocF64(4096)
			m.Parallel(func(tc *Thread) {
				tc.For(0, 4096, func(i int) { a.Set(tc, i, 1) })
				tc.For(0, 4096, func(i int) { _ = a.Get(tc, (i+2048)%4096) })
			})
		})
		return rep.Time
	}
	via := Config{Nodes: 4, ThreadsPerNode: 1, HomeMigration: true}.WithDefaults()
	tcp := via
	tcp.Fabric = netsim.TCP()
	if tv, tt := measure(via), measure(tcp); tt <= tv {
		t.Fatalf("TCP (%v) not slower than VIA (%v)", tt, tv)
	}
}

func TestLockCachingConfigRuns(t *testing.T) {
	cfg := Config{Nodes: 4, ThreadsPerNode: 1, Mode: SDSM, LockCaching: true}
	var final float64
	rep := run(t, cfg, func(m *Thread) {
		s := m.Cluster().ScalarVar("x")
		m.Parallel(func(tc *Thread) {
			for i := 0; i < 5; i++ {
				tc.Critical("c", []*Scalar{s}, func() { s.Add(tc, 1) })
			}
		})
		m.Parallel(func(tc *Thread) {})
		final = s.Get(m)
	})
	if final != 20 {
		t.Fatalf("sum = %v", final)
	}
	if rep.Counters.LockRequests == 0 {
		t.Fatal("no lock requests recorded")
	}
}

func TestThreadStringer(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 2}
	run(t, cfg, func(m *Thread) {
		if m.String() != "thread0@node0" {
			t.Errorf("String = %q", m.String())
		}
	})
}

func TestReportUtilization(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 1, CPUsPerNode: 1}
	rep := run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) { tc.Compute(10 * sim.Millisecond) })
	})
	if len(rep.CPUBusy) != 2 {
		t.Fatalf("CPUBusy = %v", rep.CPUBusy)
	}
	u := rep.Utilization()
	if u <= 0.3 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
	// An idle-heavy run must report lower utilization: one node computes,
	// the other waits at the barrier.
	cfgIdle := Config{Nodes: 2, ThreadsPerNode: 1, CPUsPerNode: 2}
	repIdle := run(t, cfgIdle, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			if tc.GID() == 0 {
				tc.Compute(10 * sim.Millisecond)
			}
		})
	})
	if repIdle.Utilization() >= u {
		t.Fatalf("imbalanced run utilization %v not below balanced %v", repIdle.Utilization(), u)
	}
}

func TestAutoThresholdMatchesPaperBallpark(t *testing.T) {
	th := AutoThreshold(netsim.VIA(), hlrc.DefaultCosts(), 8)
	// The paper chose 256 bytes for its 8-node VIA Linux cluster; the
	// derived value must land in the same ballpark (within ~4x).
	if th < 64 || th > 1024 {
		t.Fatalf("derived VIA threshold %d bytes, want hundreds", th)
	}
	// A slower per-byte fabric must lower the switch point.
	if tcp := AutoThreshold(netsim.TCP(), hlrc.DefaultCosts(), 8); tcp >= th {
		t.Fatalf("TCP threshold %d not below VIA %d", tcp, th)
	}
}

func TestAutoThresholdShrinksWithNodes(t *testing.T) {
	t2 := AutoThreshold(netsim.VIA(), hlrc.DefaultCosts(), 2)
	t8 := AutoThreshold(netsim.VIA(), hlrc.DefaultCosts(), 8)
	if t8 > t2 {
		t.Fatalf("threshold grew with nodes: 2->%d, 8->%d", t2, t8)
	}
}

func TestAutoThresholdSingleNodeUnbounded(t *testing.T) {
	if th := AutoThreshold(netsim.VIA(), hlrc.DefaultCosts(), 1); th < 1<<19 {
		t.Fatalf("single-node threshold %d should be effectively unbounded", th)
	}
}

func TestAutoThresholdAligned(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		for _, f := range []netsim.Fabric{netsim.VIA(), netsim.TCP()} {
			th := AutoThreshold(f, hlrc.DefaultCosts(), n)
			if th%8 != 0 || th < 8 {
				t.Fatalf("threshold %d not 8-byte aligned", th)
			}
		}
	}
}
