package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"parade/internal/netsim"
	"parade/internal/sim"
)

// orderLog records task completion order; the atomic is for lane mode,
// where tasks of different nodes execute from concurrent goroutines.
type orderLog struct {
	seq  atomic.Int64
	slot []int64
}

func newOrderLog(n int) *orderLog { return &orderLog{slot: make([]int64, n)} }

func (l *orderLog) mark(i int) { l.slot[i] = l.seq.Add(1) }

func (l *orderLog) before(a, b int) bool { return l.slot[a] < l.slot[b] }

// TestDependChainSerializes checks a write-after-write chain: three
// tasks with Out deps on the same handle run in spawn order even with
// compute costs arranged to invert it under free scheduling.
func TestDependChainSerializes(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 1}
	log := newOrderLog(3)
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			if tc.GID() == 0 {
				h := DepName("chain")
				for k := 0; k < 3; k++ {
					k := k
					tc.Task(func(ex *Thread) float64 {
						// Earlier links cost more: without edges the chain
						// would complete in reverse.
						ex.Compute(sim.Duration(3-k) * 200 * sim.Microsecond)
						log.mark(k)
						return 1
					}, WithDepend(Out, h))
				}
			}
			tc.Taskwait()
		})
	})
	if !log.before(0, 1) || !log.before(1, 2) {
		t.Fatalf("chain ran out of order: slots=%v", log.slot)
	}
}

// TestDependDiamond checks the diamond: one producer, two parallel
// readers, one consumer that waits for both.
func TestDependDiamond(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 2}
	log := newOrderLog(4)
	rep := run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			if tc.GID() == 0 {
				h := DepName("d")
				tc.Task(func(ex *Thread) float64 {
					ex.Compute(300 * sim.Microsecond)
					log.mark(0)
					return 1
				}, WithDepend(Out, h))
				for k := 1; k <= 2; k++ {
					k := k
					tc.Task(func(ex *Thread) float64 {
						ex.Compute(100 * sim.Microsecond)
						log.mark(k)
						return 1
					}, WithDepend(In, h))
				}
				tc.Task(func(ex *Thread) float64 {
					log.mark(3)
					return 1
				}, WithDepend(Out, h))
			}
			if got := tc.Taskwait(); got != 4 {
				t.Errorf("Taskwait() = %v, want 4", got)
			}
		})
	})
	for _, mid := range []int{1, 2} {
		if !log.before(0, mid) || !log.before(mid, 3) {
			t.Fatalf("diamond violated: slots=%v", log.slot)
		}
	}
	if rep.Counters.TasksReleased < 3 {
		t.Fatalf("TasksReleased = %d, want >= 3 (readers + sink held)", rep.Counters.TasksReleased)
	}
	if rep.Counters.TaskDepsResolved == 0 {
		t.Fatal("TaskDepsResolved = 0, want > 0")
	}
}

// TestDependIndependentHandlesDoNotSerialize checks that tasks on
// disjoint handles carry no edges: all spawn ready.
func TestDependIndependentHandlesDoNotSerialize(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 1}
	rep := run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			if tc.GID() == 0 {
				for k := 0; k < 8; k++ {
					h := DepName(fmt.Sprintf("solo%d", k))
					tc.Task(func(ex *Thread) float64 { return 1 }, WithDepend(Out, h))
				}
			}
			tc.Taskwait()
		})
	})
	if rep.Counters.TasksReleased != 0 {
		t.Fatalf("TasksReleased = %d, want 0 (no task should ever be held)",
			rep.Counters.TasksReleased)
	}
}

// TestDependDuplicateHandlesDedup checks that repeating a handle in one
// clause list creates one edge, and that In+Out on the same handle in
// one task collapses to inout rather than double-counting.
func TestDependDuplicateHandlesDedup(t *testing.T) {
	cfg := Config{Nodes: 1, ThreadsPerNode: 1}
	h := DepName("dup")
	rep := run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			tc.Task(func(ex *Thread) float64 { return 1 }, WithDepend(Out, h))
			tc.Task(func(ex *Thread) float64 { return 1 },
				WithDepend(In, h, h, h), WithDepend(Out, h))
			tc.Taskwait()
		})
	})
	// One edge writer->reader, so exactly one resolution and one release.
	if rep.Counters.TaskDepsResolved != 1 || rep.Counters.TasksReleased != 1 {
		t.Fatalf("deps_resolved=%d released=%d, want 1 and 1",
			rep.Counters.TaskDepsResolved, rep.Counters.TasksReleased)
	}
}

// TestDependAddrHandles checks address-based dependence on shared-array
// elements: writer then reader on the same element serialize; a
// different element does not.
func TestDependAddrHandles(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 1}
	log := newOrderLog(2)
	rep := run(t, cfg, func(m *Thread) {
		c := m.Cluster()
		a := c.AllocF64(64)
		m.Parallel(func(tc *Thread) {
			if tc.GID() == 0 {
				tc.Task(func(ex *Thread) float64 {
					ex.Compute(200 * sim.Microsecond)
					a.Set(ex, 3, 7)
					log.mark(0)
					return 0
				}, WithDepend(Out, DepAddr(a.Addr(3))))
				tc.Task(func(ex *Thread) float64 {
					log.mark(1)
					return a.Get(ex, 3)
				}, WithDepend(In, DepAddr(a.Addr(3))))
			}
			if got := tc.Taskwait(); got != 7 {
				t.Errorf("Taskwait() = %v, want 7", got)
			}
		})
	})
	if !log.before(0, 1) {
		t.Fatalf("reader ran before writer: slots=%v", log.slot)
	}
	if rep.Counters.TasksReleased != 1 {
		t.Fatalf("TasksReleased = %d, want 1", rep.Counters.TasksReleased)
	}
}

// TestDependTaskForwardReference checks DepTask on a name registered
// only by a later sibling: the waiter stays pending until registration
// and completion, and a name never registered resolves vacuously at the
// join instead of deadlocking.
func TestDependTaskForwardReference(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 1}
	log := newOrderLog(2)
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			if tc.GID() == 0 {
				tc.Task(func(ex *Thread) float64 {
					log.mark(1)
					return 1
				}, WithDepend(In, DepTask("late")))
				tc.Task(func(ex *Thread) float64 {
					ex.Compute(200 * sim.Microsecond)
					log.mark(0)
					return 1
				}, WithTaskName("late"))
				// Dangling: no sibling ever registers "ghost"; Taskwait must
				// release this vacuously rather than hang.
				tc.Task(func(ex *Thread) float64 { return 1 },
					WithDepend(In, DepTask("ghost")))
			}
			if got := tc.Taskwait(); got != 3 {
				t.Errorf("Taskwait() = %v, want 3", got)
			}
		})
	})
	if !log.before(0, 1) {
		t.Fatalf("waiter ran before the named task: slots=%v", log.slot)
	}
}

// TestDependPriorityOrdersReadyQueue checks that among simultaneously
// ready tasks on one node, higher WithPriority values run first.
func TestDependPriorityOrdersReadyQueue(t *testing.T) {
	cfg := Config{Nodes: 1, ThreadsPerNode: 1}
	log := newOrderLog(3)
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			for k := 0; k < 3; k++ {
				k := k
				tc.Task(func(ex *Thread) float64 {
					log.mark(k)
					return 1
				}, WithPriority(k))
			}
			tc.Taskwait()
		})
	})
	// Single node, single thread: the local pop takes highest priority
	// first, so completion order is 2, 1, 0.
	if !log.before(2, 1) || !log.before(1, 0) {
		t.Fatalf("priority ignored: slots=%v", log.slot)
	}
}

// TestDependCycleRejected table-drives cyclic and self-referential
// depend sets: each aborts the run with a typed *TaskCycleError instead
// of deadlocking.
func TestDependCycleRejected(t *testing.T) {
	cases := []struct {
		name    string
		program func(tc *Thread)
	}{
		{"self", func(tc *Thread) {
			tc.Task(func(ex *Thread) float64 { return 0 },
				WithTaskName("me"), WithDepend(In, DepTask("me")))
		}},
		{"two-cycle", func(tc *Thread) {
			tc.Task(func(ex *Thread) float64 { return 0 },
				WithTaskName("a"), WithDepend(In, DepTask("b")))
			tc.Task(func(ex *Thread) float64 { return 0 },
				WithTaskName("b"), WithDepend(In, DepTask("a")))
		}},
		{"three-cycle", func(tc *Thread) {
			tc.Task(func(ex *Thread) float64 { return 0 },
				WithTaskName("a"), WithDepend(In, DepTask("c")))
			tc.Task(func(ex *Thread) float64 { return 0 },
				WithTaskName("b"), WithDepend(In, DepTask("a")))
			tc.Task(func(ex *Thread) float64 { return 0 },
				WithTaskName("c"), WithDepend(In, DepTask("b")))
		}},
	}
	for _, cse := range cases {
		t.Run(cse.name, func(t *testing.T) {
			cfg := Config{Nodes: 2, ThreadsPerNode: 1}
			_, err := Run(cfg, func(m *Thread) {
				m.Parallel(func(tc *Thread) {
					if tc.GID() == 0 {
						cse.program(tc)
					}
					tc.Taskwait()
				})
			})
			var cyc *TaskCycleError
			if !errors.As(err, &cyc) {
				t.Fatalf("Run error = %v, want a *TaskCycleError", err)
			}
			if cyc.Name == "" {
				t.Fatal("TaskCycleError.Name is empty")
			}
		})
	}
}

// TestDependNestedContexts checks that a task's children form their own
// dependence context: a child chain serializes within the parent while
// the parent's siblings stay unaffected, and the parent's implicit join
// resolves dangling child names.
func TestDependNestedContexts(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 1}
	log := newOrderLog(2)
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			if tc.GID() == 0 {
				tc.Task(func(ex *Thread) float64 {
					h := DepName("inner")
					ex.Task(func(e2 *Thread) float64 {
						e2.Compute(200 * sim.Microsecond)
						log.mark(0)
						return 1
					}, WithDepend(Out, h))
					ex.Task(func(e2 *Thread) float64 {
						log.mark(1)
						return 1
					}, WithDepend(In, h))
					// A dangling forward reference in the child context: the
					// parent's completion must resolve it vacuously.
					ex.Task(func(e2 *Thread) float64 { return 1 },
						WithDepend(In, DepTask("never")))
					return 0
				})
			}
			if got := tc.Taskwait(); got != 3 {
				t.Errorf("Taskwait() = %v, want 3", got)
			}
		})
	})
	if !log.before(0, 1) {
		t.Fatalf("child chain out of order: slots=%v", log.slot)
	}
}

// TestTargetPinsToDevice checks that Target tasks execute on the named
// device node regardless of spawner, and that MapTo prefetch plus
// MapFrom refresh move the mapped pages without faulting in the body.
func TestTargetPinsToDevice(t *testing.T) {
	cfg := Config{Nodes: 4, ThreadsPerNode: 1}
	var execNode [4]int64
	rep := run(t, cfg, func(m *Thread) {
		c := m.Cluster()
		a := c.AllocF64(512)
		m.Parallel(func(tc *Thread) {
			tc.For(0, 512, func(i int) { a.Set(tc, i, float64(i)) })
			gid := tc.GID()
			tc.Target(2, func(ex *Thread) float64 {
				atomic.StoreInt64(&execNode[gid], int64(ex.NodeID()))
				return a.Get(ex, gid)
			}, WithMap(MapTo, a))
			if got := tc.Taskwait(); got != 0+1+2+3 {
				t.Errorf("Taskwait() = %v, want 6", got)
			}
		})
	})
	for gid, n := range execNode {
		if n != 2 {
			t.Fatalf("target from gid %d ran on node %d, want 2", gid, n)
		}
	}
	if rep.Counters.TasksStolen != 0 {
		t.Fatalf("pinned tasks were stolen: %s", rep.Counters.String())
	}
}

// TestTargetInvalidDevicePanics checks the range validation. Target
// panics before touching any scheduler state, so the thread recovers
// in place and finishes the region normally.
func TestTargetInvalidDevicePanics(t *testing.T) {
	cfg := Config{Nodes: 2, ThreadsPerNode: 1}
	run(t, cfg, func(m *Thread) {
		m.Parallel(func(tc *Thread) {
			if tc.GID() == 0 {
				func() {
					defer func() {
						if recover() == nil {
							t.Error("Target(7) did not panic on a 2-node cluster")
						}
					}()
					tc.Target(7, func(ex *Thread) float64 { return 0 })
				}()
			}
			tc.Taskwait()
		})
	})
}

// TestDependBitIdenticalAcrossLanes runs the same dependence program in
// legacy and lane mode at several lane-relevant shapes and requires
// bit-identical Taskwait sums.
func TestDependBitIdenticalAcrossLanes(t *testing.T) {
	program := func(cfg Config) float64 {
		var got float64
		run2 := func() (Report, error) {
			return Run(cfg, func(m *Thread) {
				c := m.Cluster()
				a := c.AllocF64(256)
				m.Parallel(func(tc *Thread) {
					lo, hi := tc.StaticRange(0, 8)
					for s := lo; s < hi; s++ {
						s := s
						h := DepName(fmt.Sprintf("s%d", s))
						tc.Task(func(ex *Thread) float64 {
							for i := 0; i < 32; i++ {
								a.Set(ex, s*32+i, float64(s*32+i)*0.5)
							}
							return 0
						}, WithDepend(Out, h))
						tc.Task(func(ex *Thread) float64 {
							var sum float64
							for i := 0; i < 32; i++ {
								sum += a.Get(ex, s*32+i)
							}
							return sum
						}, WithDepend(In, h), WithPriority(1))
					}
					v := tc.Taskwait()
					tc.Master(func() { got = v })
				})
			})
		}
		if _, err := run2(); err != nil {
			t.Fatal(err)
		}
		return got
	}
	base := program(Config{Nodes: 4, ThreadsPerNode: 1})
	for _, lanes := range []int{1, 4} {
		lanes := lanes
		got := program(Config{Nodes: 4, ThreadsPerNode: 1, Lanes: lanes})
		if got != base {
			t.Fatalf("lanes=%d sum %v != legacy %v", lanes, got, base)
		}
	}
}

// TestHeteroScalesCompute checks the per-node cost multiplier end to
// end: the same serial compute on a 4x node takes 4x simulated time.
func TestHeteroScalesCompute(t *testing.T) {
	elapsed := func(h *netsim.Hetero) sim.Duration {
		var d sim.Duration
		cfg := Config{Nodes: 2, ThreadsPerNode: 1, Hetero: h}
		run(t, cfg, func(m *Thread) {
			m.Parallel(func(tc *Thread) {
				if tc.NodeID() == 1 {
					t0 := tc.Now()
					tc.Compute(100 * sim.Microsecond)
					d = sim.Duration(tc.Now() - t0)
				}
				tc.Barrier()
			})
		})
		return d
	}
	uniform := elapsed(nil)
	slow := elapsed(&netsim.Hetero{Factors: []float64{1, 4}})
	if slow != 4*uniform {
		t.Fatalf("hetero compute on node 1: %v, want 4 * %v", slow, uniform)
	}
}
