package core

import (
	"fmt"

	"parade/internal/obs"
	"parade/internal/sim"
)

// Synchronization directives (§4.2). Each has two lowerings:
//
//   - the hybrid (ParADE) path: intra-node exclusion with a pthread
//     mutex plus one inter-node collective that both propagates the
//     small data (update protocol) and synchronizes the processes —
//     no SDSM lock, no twin/diff, no page transfer;
//   - the conventional SDSM path: a distributed lock whose grant carries
//     write notices, page invalidation, and a page fetch on the next
//     access — the expensive sequence the paper's Fig. 2/3 left side
//     shows and the microbenchmarks of Figs. 6/7 measure.
//
// Mode selects the default; directives fall back to the SDSM path when
// the guarded data exceeds the small-structure threshold or is not
// statically analyzable (no scalars supplied).

// rendezvous coordinates one combine round of a node's local threads.
type rendezvous struct {
	mu      *sim.Mutex
	cond    *sim.Cond
	count   int
	round   int
	acc     float64
	result  float64
	accV    []float64
	resultV []float64
}

func (n *node) rendezvousFor(name string) *rendezvous {
	rv := n.rendezvous[name]
	if rv == nil {
		mu := sim.NewMutex(n.s)
		rv = &rendezvous{mu: mu, cond: sim.NewCond(mu)}
		n.rendezvous[name] = rv
	}
	return rv
}

// lockID maps a directive site name to a global SDSM lock, assigned in
// first-use order (deterministic under the simulation kernel).
func (c *Cluster) lockID(name string) int {
	if id, ok := c.lockIDs[name]; ok {
		return id
	}
	if c.lockIDs == nil {
		c.lockIDs = map[string]int{}
	}
	id := len(c.lockIDs)
	c.lockIDs[name] = id
	return id
}

// useCollective is the hybrid message-passing/SDSM cutoff (§5.2.1): a
// directive guarding size bytes takes the message-passing collective
// path when the runtime is in Hybrid mode and the data fits under the
// small-structure threshold. The threshold is the paper's lexical 256
// bytes by default; the adaptive policy derives it from the fabric,
// cost model, and node count instead (AutoThreshold, applied in
// WithDefaults), so the cutoff tracks the actual crossover point.
func (t *Thread) useCollective(size int) bool {
	return t.c.cfg.Mode == Hybrid && size <= t.c.cfg.SmallThreshold
}

// Critical executes fn under the named critical directive. scalars lists
// the small shared variables the block modifies; when the block is
// statically analyzable (scalars != nil, commutative updates) and their
// combined size is within the threshold, the hybrid path is used.
//
// Hybrid-path semantics follow the update protocol: fn's modifications
// to the scalars must be commutative accumulations (the lexically
// analyzable blocks of §4.2); each node applies its local updates under
// the pthread mutex, and one collective per team round merges the
// per-node deltas and agrees on the new values everywhere.
func (t *Thread) Critical(name string, scalars []*Scalar, fn func()) {
	rec, t0 := t.directiveStart()
	if scalars != nil && t.useCollective(8*len(scalars)) {
		t.criticalHybrid(name, scalars, fn)
	} else {
		t.criticalSDSM(name, fn)
	}
	rec.Directive(t0, t.p.Now(), t.node.id, "critical", name)
}

// directiveStart marks the start of a directive span for this thread; it
// returns the recorder (nil when observability is disabled) and the start
// time. Every obs.Recorder method is a no-op on a nil receiver, so the
// matching rec.Directive call needs no guard.
func (t *Thread) directiveStart() (*obs.Recorder, sim.Time) {
	if t.c.rec == nil {
		return nil, 0
	}
	return t.c.rec, t.p.Now()
}

// criticalHybrid is the ParADE lowering of Fig. 2 (right).
func (t *Thread) criticalHybrid(name string, scalars []*Scalar, fn func()) {
	n, p := t.node, t.p
	t.Compute(localPthreadOp)
	mu := n.mutex("crit:" + name)
	mu.Lock(p)
	fn()
	mu.Unlock(p)
	t.c.cnt(n.id).HybridCriticals++
	t.combineRound("crit:"+name, scalars)
}

// combineRound merges the per-node deltas of the scalars across nodes
// once every local thread has contributed (one collective per team
// round, performed by the node's last-arriving thread).
func (t *Thread) combineRound(name string, scalars []*Scalar) {
	c, n, p := t.c, t.node, t.p
	rv := n.rendezvousFor(name)
	rv.mu.Lock(p)
	myRound := rv.round
	rv.count++
	if rv.count < c.cfg.ThreadsPerNode {
		for rv.round == myRound {
			rv.cond.Wait(p)
		}
		rv.mu.Unlock(p)
		return
	}
	rv.count = 0
	rv.mu.Unlock(p)

	if c.cfg.Nodes > 1 {
		deltas := make([]float64, len(scalars))
		for k, s := range scalars {
			deltas[k] = s.vals[n.id] - s.base[n.id]
		}
		res := c.world.Rank(n.id).Allreduce(p, deltas, 8*len(deltas), sumF64Slice)
		sums := res.([]float64)
		for k, s := range scalars {
			s.vals[n.id] = s.base[n.id] + sums[k]
			s.base[n.id] = s.vals[n.id]
		}
	} else {
		for _, s := range scalars {
			s.base[n.id] = s.vals[n.id]
		}
	}

	rv.mu.Lock(p)
	rv.round++
	rv.cond.Broadcast()
	rv.mu.Unlock(p)
}

// sumF64Slice element-wise adds two []float64 without mutating either.
func sumF64Slice(a, b any) any {
	as, bs := a.([]float64), b.([]float64)
	out := make([]float64, len(as))
	for i := range as {
		out[i] = as[i] + bs[i]
	}
	return out
}

// criticalSDSM is the conventional lowering of Fig. 2 (left): hierarchical
// pthread mutex + distributed SDSM lock around the block.
func (t *Thread) criticalSDSM(name string, fn func()) {
	n, p := t.node, t.p
	t.Compute(localPthreadOp)
	mu := n.mutex("crit:" + name)
	mu.Lock(p)
	id := t.lockID("crit:" + name)
	t.c.engine.AcquireLock(p, n.id, id)
	fn()
	t.c.engine.ReleaseLock(p, n.id, id)
	mu.Unlock(p)
}

// Atomic performs the atomic directive — an atomic accumulation into a
// small shared variable, which maps exactly onto one collective (§4.2).
func (t *Thread) Atomic(s *Scalar, delta float64) {
	rec, t0 := t.directiveStart()
	if t.useCollective(s.SizeBytes()) {
		t.c.cnt(t.node.id).HybridAtomics++
		t.criticalHybrid("atomic:"+s.name, []*Scalar{s}, func() { s.Add(t, delta) })
	} else {
		t.criticalSDSM("atomic:"+s.name, func() { s.Add(t, delta) })
	}
	rec.Directive(t0, t.p.Now(), t.node.id, "atomic", s.name)
}

// Op is a reduction operator.
type Op int

// Reduction operators supported by the reduction clause.
const (
	OpSum Op = iota
	OpMax
	OpMin
	OpProd
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpMax:
		if a > b {
			return a
		}
		return b
	case OpMin:
		if a < b {
			return a
		}
		return b
	case OpProd:
		return a * b
	default:
		panic(fmt.Sprintf("core: unknown op %d", o))
	}
}

// Reduce implements the reduction clause for one scalar contribution v
// per thread, returning the combined value on every thread.
//
// Hybrid path: local threads combine on the node, the last arrival joins
// one MPI_Allreduce — the lowering that makes the Helmholtz convergence
// test nearly free (§6.2). Conventional path: every thread publishes its
// partial into a shared slot array and reads all slots back after a
// barrier — page transfers plus two SDSM barriers.
func (t *Thread) Reduce(name string, op Op, v float64) float64 {
	rec, t0 := t.directiveStart()
	var out float64
	if t.c.cfg.Mode == Hybrid {
		out = t.reduceHybrid(name, op, v)
	} else {
		out = t.reduceSDSM(name, op, v)
	}
	rec.Directive(t0, t.p.Now(), t.node.id, "reduction", name)
	return out
}

func (t *Thread) reduceHybrid(name string, op Op, v float64) float64 {
	c, n, p := t.c, t.node, t.p
	rv := n.rendezvousFor("red:" + name)
	rv.mu.Lock(p)
	myRound := rv.round
	if rv.count == 0 {
		rv.acc = v
	} else {
		rv.acc = op.apply(rv.acc, v)
	}
	rv.count++
	if rv.count < c.cfg.ThreadsPerNode {
		for rv.round == myRound {
			rv.cond.Wait(p)
		}
		res := rv.result
		rv.mu.Unlock(p)
		return res
	}
	rv.count = 0
	local := rv.acc
	rv.mu.Unlock(p)

	result := local
	if c.cfg.Nodes > 1 {
		res := c.world.Rank(n.id).Allreduce(p, local, 8, func(a, b any) any {
			return op.apply(a.(float64), b.(float64))
		})
		result = res.(float64)
	}
	c.cnt(n.id).HybridReductions++

	rv.mu.Lock(p)
	rv.result = result
	rv.round++
	rv.cond.Broadcast()
	rv.mu.Unlock(p)
	return result
}

func (t *Thread) reduceSDSM(name string, op Op, v float64) float64 {
	slots := t.reduceSlots(name)
	slots.Set(t, t.gid, v)
	t.Barrier()
	acc := slots.Get(t, 0)
	for i := 1; i < t.NumThreads(); i++ {
		acc = op.apply(acc, slots.Get(t, i))
	}
	// A second barrier protects the slots from the next round's writes
	// overtaking slow readers.
	t.Barrier()
	return acc
}

// ReduceVec implements a reduction clause over several variables at
// once: per §4.2, multiple reduction variables are merged into one
// structure and reduced with a single collective. Every thread
// contributes a vector of the same length and receives the element-wise
// combination.
func (t *Thread) ReduceVec(name string, op Op, v []float64) []float64 {
	rec, t0 := t.directiveStart()
	var out []float64
	if t.c.cfg.Mode == Hybrid {
		out = t.reduceVecHybrid(name, op, v)
	} else {
		out = t.reduceVecSDSM(name, op, v)
	}
	rec.Directive(t0, t.p.Now(), t.node.id, "reduction", name)
	return out
}

func (t *Thread) reduceVecHybrid(name string, op Op, v []float64) []float64 {
	c, n, p := t.c, t.node, t.p
	rv := n.rendezvousFor("redv:" + name)
	rv.mu.Lock(p)
	myRound := rv.round
	if rv.count == 0 {
		rv.accV = append(rv.accV[:0], v...)
	} else {
		for i := range v {
			rv.accV[i] = op.apply(rv.accV[i], v[i])
		}
	}
	rv.count++
	if rv.count < c.cfg.ThreadsPerNode {
		for rv.round == myRound {
			rv.cond.Wait(p)
		}
		res := append([]float64(nil), rv.resultV...)
		rv.mu.Unlock(p)
		return res
	}
	rv.count = 0
	local := append([]float64(nil), rv.accV...)
	rv.mu.Unlock(p)

	result := local
	if c.cfg.Nodes > 1 {
		res := c.world.Rank(n.id).Allreduce(p, local, 8*len(local), func(a, b any) any {
			as, bs := a.([]float64), b.([]float64)
			out := make([]float64, len(as))
			for i := range as {
				out[i] = op.apply(as[i], bs[i])
			}
			return out
		})
		result = res.([]float64)
	}
	c.cnt(n.id).HybridReductions++

	rv.mu.Lock(p)
	rv.resultV = result
	rv.round++
	rv.cond.Broadcast()
	rv.mu.Unlock(p)
	return append([]float64(nil), result...)
}

func (t *Thread) reduceVecSDSM(name string, op Op, v []float64) []float64 {
	nt := t.NumThreads()
	slots := t.reduceSlotsN(name, nt*len(v))
	for i, x := range v {
		slots.Set(t, t.gid*len(v)+i, x)
	}
	t.Barrier()
	out := make([]float64, len(v))
	for i := range v {
		out[i] = slots.Get(t, i)
	}
	for th := 1; th < nt; th++ {
		for i := range v {
			out[i] = op.apply(out[i], slots.Get(t, th*len(v)+i))
		}
	}
	t.Barrier()
	return out
}

// reduceSlotsN returns the named shared slot array with at least n
// elements, creating it on first use.
func (c *Cluster) reduceSlotsN(name string, n int) F64Array {
	if a, ok := c.slotArrays[name]; ok {
		if a.Len() < n {
			panic("core: reduction slot array reused with a larger width")
		}
		return a
	}
	if c.slotArrays == nil {
		c.slotArrays = map[string]F64Array{}
	}
	a := c.AllocF64(n)
	c.slotArrays[name] = a
	return a
}

// reduceSlots returns the named shared slot array (one float64 per team
// thread), creating it on first use.
func (c *Cluster) reduceSlots(name string) F64Array {
	if a, ok := c.slotArrays[name]; ok {
		return a
	}
	if c.slotArrays == nil {
		c.slotArrays = map[string]F64Array{}
	}
	a := c.AllocF64(c.TotalThreads())
	c.slotArrays[name] = a
	return a
}

// gateInfo tracks one round of a single site on one node.
type gateInfo struct {
	gate   *sim.Gate
	passed int
}

// Single executes fn exactly once in the team (§4.2, Fig. 3). s is the
// small shared variable the block initializes (nil for a pure side-
// effect block). The hybrid lowering executes fn on the master node's
// first-arriving thread and broadcasts the value — no SDSM lock and no
// inter-node barrier. The conventional lowering takes the SDSM lock,
// tests a shared flag, and ends with a full barrier.
func (t *Thread) Single(name string, s *Scalar, fn func()) {
	rec, t0 := t.directiveStart()
	if s == nil && t.c.cfg.Mode == Hybrid || s != nil && t.useCollective(s.SizeBytes()) {
		t.singleHybrid(name, s, fn)
	} else {
		t.singleSDSM(name, fn)
	}
	rec.Directive(t0, t.p.Now(), t.node.id, "single", name)
}

// SingleBarrier is the general single directive for blocks that are not
// statically analyzable (they may touch arbitrary shared pages): both
// modes use the conventional flag + lock + barrier lowering, and the
// modified pages propagate through the barrier's flush.
func (t *Thread) SingleBarrier(name string, fn func()) {
	rec, t0 := t.directiveStart()
	t.singleSDSM(name, fn)
	rec.Directive(t0, t.p.Now(), t.node.id, "single", name)
}

func (t *Thread) singleHybrid(name string, s *Scalar, fn func()) {
	c, n, p := t.c, t.node, t.p
	r := t.round("single:" + name)
	key := fmt.Sprintf("single:%s:%d", name, r)
	t.Compute(localPthreadOp)
	gi := n.gates[key]
	if gi == nil {
		gi = &gateInfo{gate: sim.NewGate(c.s)}
		n.gates[key] = gi
		// First arrival on this node performs the inter-node work.
		if n.id == 0 {
			fn()
			c.cnt(0).HybridSingles++
			var payload float64
			if s != nil {
				payload = s.vals[0]
				s.base[0] = payload
			}
			if c.cfg.Nodes > 1 {
				c.world.Rank(0).Bcast(p, 0, payload, 8)
			}
		} else {
			v := c.world.Rank(n.id).Bcast(p, 0, nil, 8)
			if s != nil {
				s.vals[n.id] = v.(float64)
				s.base[n.id] = v.(float64)
			}
		}
		gi.gate.Open()
	} else {
		gi.gate.Wait(p)
	}
	gi.passed++
	if gi.passed == c.cfg.ThreadsPerNode {
		delete(n.gates, key)
	}
}

// singleSDSM is the conventional lowering of Fig. 3 (left): the shared
// flag decides the earliest thread, guarded by the SDSM lock, followed
// by the implicit barrier.
func (t *Thread) singleSDSM(name string, fn func()) {
	c, n, p := t.c, t.node, t.p
	r := t.round("single:" + name)
	flagAddr := t.singleFlag(name)
	id := t.lockID("single:" + name)
	t.Compute(localPthreadOp)
	mu := n.mutex("single:" + name)
	mu.Lock(p)
	c.engine.AcquireLock(p, n.id, id)
	c.engine.EnsureRead(p, n.id, flagAddr)
	flag := c.engine.Mem(n.id).ReadI64(flagAddr)
	if flag == int64(r) {
		fn()
		c.engine.EnsureWrite(p, n.id, flagAddr)
		c.engine.Mem(n.id).WriteI64(flagAddr, int64(r)+1)
	}
	c.engine.ReleaseLock(p, n.id, id)
	mu.Unlock(p)
	t.Barrier()
}

// singleFlag returns the SDSM address of the named single site's round
// flag, allocating it on first use.
func (c *Cluster) singleFlag(name string) int {
	if addr, ok := c.singles[name]; ok {
		return addr
	}
	addr := c.engine.Alloc.Alloc(8, 8)
	c.singles[name] = addr
	return addr
}
