package sim

import (
	"testing"
	"testing/quick"
)

func TestSleepAdvancesClock(t *testing.T) {
	s := New(1)
	var woke Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		woke = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(5*Millisecond) {
		t.Fatalf("woke at %v, want 5ms", woke)
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	s := New(1)
	ran := false
	s.Spawn("p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-3)
		ran = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("process did not complete")
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved to %v on zero sleep", s.Now())
	}
}

func TestEventOrderingFIFOAtSameInstant(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Duration(0), func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not FIFO", order)
		}
	}
}

func TestAtOrdersByTime(t *testing.T) {
	s := New(1)
	var order []int
	s.At(3*Microsecond, func() { order = append(order, 3) })
	s.At(1*Microsecond, func() { order = append(order, 1) })
	s.At(2*Microsecond, func() { order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("got order %v", order)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New(1)
	mu := NewMutex(s)
	cond := NewCond(mu)
	s.Spawn("stuck", func(p *Proc) {
		mu.Lock(p)
		cond.Wait(p) // never signalled
	})
	err := s.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("want DeadlockError, got %v", err)
	}
	if len(de.Parked) != 1 || de.Parked[0] != "stuck: cond" {
		t.Fatalf("parked = %v", de.Parked)
	}
}

func TestMutexMutualExclusionAndFIFO(t *testing.T) {
	s := New(1)
	mu := NewMutex(s)
	var order []string
	inside := 0
	body := func(p *Proc) {
		mu.Lock(p)
		inside++
		if inside != 1 {
			t.Errorf("mutual exclusion violated")
		}
		p.Sleep(1 * Millisecond)
		order = append(order, p.Name())
		inside--
		mu.Unlock(p)
	}
	for _, n := range []string{"a", "b", "c"} {
		n := n
		s.Spawn(n, body)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("lock hand-off order %v, want FIFO", order)
	}
}

func TestMutexTryLock(t *testing.T) {
	s := New(1)
	mu := NewMutex(s)
	s.Spawn("p", func(p *Proc) {
		if !mu.TryLock(p) {
			t.Error("TryLock on free mutex failed")
		}
		if mu.TryLock(p) {
			t.Error("TryLock on held mutex succeeded")
		}
		mu.Unlock(p)
		if mu.Locked() {
			t.Error("mutex still locked after Unlock")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	s := New(1)
	mu := NewMutex(s)
	cond := NewCond(mu)
	ready := 0
	woken := 0
	for i := 0; i < 3; i++ {
		s.Spawn("waiter", func(p *Proc) {
			mu.Lock(p)
			ready++
			cond.Wait(p)
			woken++
			mu.Unlock(p)
		})
	}
	s.Spawn("signaller", func(p *Proc) {
		p.Sleep(Millisecond)
		mu.Lock(p)
		cond.Signal()
		mu.Unlock(p)
		p.Sleep(Millisecond)
		mu.Lock(p)
		cond.Broadcast()
		mu.Unlock(p)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ready != 3 || woken != 3 {
		t.Fatalf("ready=%d woken=%d", ready, woken)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	s := New(1)
	sem := NewSemaphore(s, 2)
	inside, peak := 0, 0
	for i := 0; i < 6; i++ {
		s.Spawn("w", func(p *Proc) {
			sem.Acquire(p)
			inside++
			if inside > peak {
				peak = inside
			}
			p.Sleep(Millisecond)
			inside--
			sem.Release()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if peak != 2 {
		t.Fatalf("peak concurrency %d, want 2", peak)
	}
}

func TestQueueBlockingPop(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	var got []int
	s.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Pop(p))
		}
	})
	s.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(Millisecond)
			q.Push(i * 10)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
}

func TestQueuePushFromEventCallback(t *testing.T) {
	s := New(1)
	q := NewQueue[string](s)
	var got string
	s.Spawn("consumer", func(p *Proc) { got = q.Pop(p) })
	s.At(2*Millisecond, func() { q.Push("hello") })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("got %q", got)
	}
	if s.Now() != Time(2*Millisecond) {
		t.Fatalf("ended at %v", s.Now())
	}
}

func TestQueueMultipleWaitersCascade(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	sum := 0
	for i := 0; i < 3; i++ {
		s.Spawn("c", func(p *Proc) { sum += q.Pop(p) })
	}
	s.At(Millisecond, func() {
		q.Push(1)
		q.Push(2)
		q.Push(4)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 7 {
		t.Fatalf("sum=%d, want 7", sum)
	}
}

func TestQueueTryPop(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
	q.Push(9)
	if q.Len() != 1 {
		t.Fatalf("Len=%d", q.Len())
	}
	v, ok := q.TryPop()
	if !ok || v != 9 {
		t.Fatalf("TryPop = %v,%v", v, ok)
	}
}

func TestWaitGroup(t *testing.T) {
	s := New(1)
	wg := NewWaitGroup(s)
	wg.Add(3)
	doneAt := Time(-1)
	for i := 1; i <= 3; i++ {
		i := i
		s.Spawn("w", func(p *Proc) {
			p.Sleep(Duration(i) * Millisecond)
			wg.Done()
		})
	}
	s.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != Time(3*Millisecond) {
		t.Fatalf("waiter resumed at %v, want 3ms", doneAt)
	}
}

func TestWaitGroupZeroDoesNotBlock(t *testing.T) {
	s := New(1)
	wg := NewWaitGroup(s)
	ran := false
	s.Spawn("p", func(p *Proc) {
		wg.Wait(p)
		ran = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("Wait on zero counter blocked")
	}
}

func TestCPUUncontendedRunsFullSlice(t *testing.T) {
	s := New(1)
	cpu := NewCPU(s, 2, DefaultQuantum)
	var end Time
	s.Spawn("p", func(p *Proc) {
		cpu.Compute(p, 10*Millisecond)
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(10*Millisecond) {
		t.Fatalf("finished at %v, want 10ms", end)
	}
}

func TestCPUContentionSerializes(t *testing.T) {
	// Two processes each needing 10ms on a single CPU must take 20ms
	// total, and time-slicing should let them finish within one quantum
	// of each other.
	s := New(1)
	cpu := NewCPU(s, 1, Millisecond)
	var ends []Time
	for i := 0; i < 2; i++ {
		s.Spawn("p", func(p *Proc) {
			cpu.Compute(p, 10*Millisecond)
			ends = append(ends, p.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != Time(20*Millisecond) {
		t.Fatalf("makespan %v, want 20ms", s.Now())
	}
	gap := ends[1] - ends[0]
	if gap < 0 {
		gap = -gap
	}
	if gap > Time(Millisecond) {
		t.Fatalf("ends %v not round-robin fair", ends)
	}
}

func TestCPUTwoSlotsRunInParallel(t *testing.T) {
	s := New(1)
	cpu := NewCPU(s, 2, Millisecond)
	for i := 0; i < 2; i++ {
		s.Spawn("p", func(p *Proc) { cpu.Compute(p, 10*Millisecond) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != Time(10*Millisecond) {
		t.Fatalf("makespan %v, want 10ms (parallel)", s.Now())
	}
}

func TestCPUBusyTimeAccounting(t *testing.T) {
	s := New(1)
	cpu := NewCPU(s, 1, Millisecond)
	s.Spawn("p", func(p *Proc) { cpu.Compute(p, 7*Millisecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if cpu.BusyTime != 7*Millisecond {
		t.Fatalf("BusyTime=%v, want 7ms", cpu.BusyTime)
	}
}

func TestCPUPreemptionBoundsLatency(t *testing.T) {
	// A long compute on a fully-busy single CPU must not starve a late
	// arrival for more than ~one quantum before it gets its first slice.
	s := New(1)
	q := Millisecond
	cpu := NewCPU(s, 1, q)
	var firstSlice Time
	s.Spawn("hog", func(p *Proc) { cpu.Compute(p, 100*Millisecond) })
	s.Spawn("latecomer", func(p *Proc) {
		p.Sleep(Duration(10*Millisecond) + Duration(q)/2)
		cpu.Compute(p, Duration(q))
		firstSlice = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Arrival at 10.5ms; hog's current quantum ends at 11ms; latecomer
	// then runs 1ms -> done by 12ms.
	if firstSlice > Time(13*Millisecond) {
		t.Fatalf("latecomer finished first slice at %v, starved", firstSlice)
	}
}

func TestSpawnFromWithinProc(t *testing.T) {
	s := New(1)
	childRan := false
	s.Spawn("parent", func(p *Proc) {
		p.Sleep(Millisecond)
		s.Spawn("child", func(c *Proc) {
			c.Sleep(Millisecond)
			childRan = true
		})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
	if s.Now() != Time(2*Millisecond) {
		t.Fatalf("ended at %v", s.Now())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		s := New(42)
		cpu := NewCPU(s, 2, Millisecond)
		q := NewQueue[int](s)
		var trace []Time
		for i := 0; i < 4; i++ {
			s.Spawn("w", func(p *Proc) {
				d := Duration(1+s.Rand().Intn(5)) * Millisecond
				cpu.Compute(p, d)
				q.Push(p.ID())
				trace = append(trace, p.Now())
			})
		}
		s.Spawn("drain", func(p *Proc) {
			for i := 0; i < 4; i++ {
				q.Pop(p)
				trace = append(trace, p.Now())
			}
		})
		if err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunTwiceFails(t *testing.T) {
	s := New(1)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err == nil {
		t.Fatal("second Run succeeded")
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{2500, "2.50us"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.0000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

// Property: for any set of compute demands on one CPU, the makespan
// equals the sum of the demands (work conservation), and BusyTime
// equals that sum.
func TestCPUWorkConservationProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 8 {
			return true
		}
		s := New(7)
		cpu := NewCPU(s, 1, Millisecond)
		var total Duration
		for _, r := range raw {
			d := Duration(r%2000+1) * Microsecond
			total += d
			s.Spawn("w", func(p *Proc) { cpu.Compute(p, d) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		return s.Now() == Time(total) && cpu.BusyTime == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: mutex hand-off never lets two holders overlap regardless of
// sleep pattern inside the critical section.
func TestMutexExclusionProperty(t *testing.T) {
	prop := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 10 {
			return true
		}
		s := New(3)
		mu := NewMutex(s)
		inside := 0
		ok := true
		for _, r := range raw {
			d := Duration(r%100+1) * Microsecond
			s.Spawn("w", func(p *Proc) {
				p.Sleep(Duration(s.Rand().Intn(50)) * Microsecond)
				mu.Lock(p)
				inside++
				if inside != 1 {
					ok = false
				}
				p.Sleep(d)
				inside--
				mu.Unlock(p)
			})
		}
		if err := s.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGateSemantics(t *testing.T) {
	s := New(1)
	g := NewGate(s)
	if g.Opened() {
		t.Fatal("new gate already open")
	}
	passed := 0
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *Proc) {
			g.Wait(p)
			passed++
		})
	}
	s.At(Millisecond, func() { g.Open(); g.Open() }) // idempotent
	s.Spawn("late", func(p *Proc) {
		p.Sleep(2 * Millisecond)
		g.Wait(p) // already open: passes immediately
		passed++
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if passed != 4 || !g.Opened() {
		t.Fatalf("passed=%d opened=%v", passed, g.Opened())
	}
}

func TestDaemonDoesNotBlockCompletion(t *testing.T) {
	s := New(1)
	q := NewQueue[int](s)
	s.SpawnDaemon("pump", func(p *Proc) {
		for {
			q.Pop(p) // parked forever after the producer exits
		}
	})
	s.Spawn("producer", func(p *Proc) {
		q.Push(1)
		p.Sleep(Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatalf("daemon counted as deadlock: %v", err)
	}
}

func TestYieldRunsPendingEventsFirst(t *testing.T) {
	s := New(1)
	var order []string
	s.Spawn("p", func(p *Proc) {
		s.At(0, func() { order = append(order, "event") })
		p.Yield()
		order = append(order, "after")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "event" || order[1] != "after" {
		t.Fatalf("order %v", order)
	}
}

func TestRandDeterministicPerSeed(t *testing.T) {
	a1, a2 := New(7).Rand().Int63(), New(7).Rand().Int63()
	b1 := New(8).Rand().Int63()
	if a1 != a2 {
		t.Fatal("same seed diverged")
	}
	if a1 == b1 {
		t.Fatal("different seeds identical (suspicious)")
	}
}
