package sim

import "testing"

// Hygiene tests for the hand-rolled event kernel: popped heap slots must
// not retain payloads, the parked map must not accumulate entries, and
// the steady-state dispatch paths must not allocate.

func TestHeapPopClearsSlot(t *testing.T) {
	var h eventHeap
	p := &Proc{}
	h.push(event{t: 1, seq: 1, fn: func() {}})
	h.push(event{t: 2, seq: 2, p: p})
	h.pop()
	h.pop()
	// The backing array still holds the popped slots; both must be zeroed
	// so closures and Proc pointers are not retained until overwritten.
	slots := h.ev[:cap(h.ev)]
	for i, e := range slots {
		if e.fn != nil || e.p != nil {
			t.Fatalf("slot %d retains payload after pop: %+v", i, e)
		}
	}
}

func TestHeapOrdersByTimeThenSeq(t *testing.T) {
	var h eventHeap
	for _, e := range []event{
		{t: 5, seq: 9}, {t: 1, seq: 4}, {t: 5, seq: 2}, {t: 1, seq: 3}, {t: 0, seq: 8},
	} {
		ev := e
		ev.fn = func() {}
		h.push(ev)
	}
	var got [][2]int64
	for h.len() > 0 {
		e := h.pop()
		got = append(got, [2]int64{int64(e.t), int64(e.seq)})
	}
	want := [][2]int64{{0, 8}, {1, 3}, {1, 4}, {5, 2}, {5, 9}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestParkedMapEmptyAfterCleanRun(t *testing.T) {
	s := New(1)
	mu := NewMutex(s)
	for i := 0; i < 4; i++ {
		s.Spawn("w", func(p *Proc) {
			for j := 0; j < 3; j++ {
				mu.Lock(p)
				p.Sleep(Microsecond)
				mu.Unlock(p)
				p.Yield()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.parked) != 0 {
		t.Fatalf("parked map retains %d entries after clean run: %v", len(s.parked), s.parked)
	}
	if s.queue.len() != 0 {
		t.Fatalf("queue retains %d events after run", s.queue.len())
	}
}

func TestParkedMapKeepsOnlyBlockedProcsOnDeadlock(t *testing.T) {
	s := New(1)
	g := NewGate(s)
	s.Spawn("done", func(p *Proc) { p.Sleep(Microsecond) })
	s.Spawn("stuck", func(p *Proc) { g.Wait(p) })
	err := s.Run()
	if _, ok := err.(*DeadlockError); !ok {
		t.Fatalf("want deadlock, got %v", err)
	}
	if len(s.parked) != 1 {
		t.Fatalf("parked map has %d entries, want only the stuck proc: %v", len(s.parked), s.parked)
	}
	for p := range s.parked {
		if p.name != "stuck" {
			t.Fatalf("unexpected parked proc %q", p.name)
		}
	}
}

// TestDispatchPathsDoNotAllocate pins the zero-alloc property of the
// event and handoff hot paths so an accidental closure or boxing
// reintroduction fails fast.
func TestDispatchPathsDoNotAllocate(t *testing.T) {
	// Self-contained callback chain (the BenchmarkEventThroughput shape).
	s := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 1000 {
			s.At(Microsecond, tick)
		}
	}
	s.At(Microsecond, tick)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	// Sleep self-wake path: the parking proc pops its own wake event.
	s2 := New(1)
	s2.Spawn("sleeper", func(p *Proc) {
		warm := testing.AllocsPerRun(100, func() { p.Sleep(Microsecond) })
		if warm > 0 {
			t.Errorf("Sleep allocates %.1f times per op on the self-wake path", warm)
		}
	})
	if err := s2.Run(); err != nil {
		t.Fatal(err)
	}
}
