package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// waitGoroutines polls until the live goroutine count drops back to at
// most base (procExit's unwound send happens strictly before the
// goroutine's final return, so a just-torn-down run needs a beat).
func waitGoroutines(t *testing.T, base int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("%s: %d goroutines still live (want <= %d):\n%s",
				what, runtime.NumGoroutine(), base, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
}

// errStop is the cause injected by the cancel hooks below.
var errStop = errors.New("stop requested")

// cancelAfter returns a hook that fires on its nth poll. The counter is
// atomic because lane mode polls the hook concurrently from every lane
// (the SetCancel contract).
func cancelAfter(n int64) func() error {
	var polls atomic.Int64
	return func() error {
		if polls.Add(1) >= n {
			return errStop
		}
		return nil
	}
}

// TestCancelLegacy: a canceled legacy run returns a typed *CanceledError
// wrapping the hook's cause, stops executing events, and unwinds every
// process goroutine.
func TestCancelLegacy(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(1)
	s.SetCancel(cancelAfter(3), 16)
	ran := 0
	for i := 0; i < 4; i++ {
		s.Spawn(fmt.Sprintf("spin%d", i), func(p *Proc) {
			for {
				p.Sleep(Microsecond)
				ran++
			}
		})
	}
	s.SpawnDaemon("daemon", func(p *Proc) {
		NewQueue[int](s).Pop(p) // parked forever
	})
	err := s.Run()
	if err == nil {
		t.Fatal("canceled run returned nil")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T %v, want *CanceledError", err, err)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, errStop) {
		t.Fatalf("cause not preserved: %v", err)
	}
	if ran == 0 {
		t.Fatal("no events ran before cancellation")
	}
	waitGoroutines(t, base, "legacy cancel")
}

// TestCancelLanes: cancellation in the strict parallel regime — polled
// concurrently from every lane — tears down cleanly and reports the
// maximum lane clock.
func TestCancelLanes(t *testing.T) {
	for _, relaxed := range []bool{false, true} {
		t.Run(fmt.Sprintf("relaxed=%v", relaxed), func(t *testing.T) {
			base := runtime.NumGoroutine()
			s := New(7)
			s.ConfigureLanes(4, 4, 5*Microsecond, relaxed)
			s.SetCancel(cancelAfter(5), 8)
			for i := 0; i < 4; i++ {
				i := i
				s.SpawnOn(i, fmt.Sprintf("spin%d", i), func(p *Proc) {
					for {
						p.Sleep(Microsecond)
					}
				})
				s.SpawnDaemonOn(i, fmt.Sprintf("idle%d", i), func(p *Proc) {
					NewQueue[int](s).Pop(p)
				})
			}
			err := s.Run()
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled match", err)
			}
			var ce *CanceledError
			if !errors.As(err, &ce) || ce.At <= 0 {
				t.Fatalf("err = %#v, want *CanceledError with positive At", err)
			}
			waitGoroutines(t, base, "lane cancel")
		})
	}
}

// TestCancelHookNeverFires: an installed hook that stays nil does not
// disturb a run's result or its timing.
func TestCancelHookNeverFires(t *testing.T) {
	s := New(1)
	s.SetCancel(func() error { return nil }, 4)
	var end Time
	s.Spawn("p", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(Microsecond)
		}
		end = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != Time(100*Microsecond) {
		t.Fatalf("end = %v", end)
	}
}

// TestSetCancelAfterRunPanics: the hook must be installed before Run.
func TestSetCancelAfterRunPanics(t *testing.T) {
	s := New(1)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("SetCancel after Run did not panic")
		}
	}()
	s.SetCancel(func() error { return nil }, 1)
}

// TestNoGoroutineLeakAfterNormalRun: a completed run unwinds parked
// daemons (legacy and lane mode) — nothing outlives Run.
func TestNoGoroutineLeakAfterNormalRun(t *testing.T) {
	for _, lanes := range []int{0, 4} {
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			base := runtime.NumGoroutine()
			s := New(3)
			if lanes > 0 {
				s.ConfigureLanes(lanes, lanes, 5*Microsecond, false)
			}
			spawn := func(ln int, name string, fn func(p *Proc), daemon bool) {
				switch {
				case lanes == 0 && daemon:
					s.SpawnDaemon(name, fn)
				case lanes == 0:
					s.Spawn(name, fn)
				case daemon:
					s.SpawnDaemonOn(ln, name, fn)
				default:
					s.SpawnOn(ln, name, fn)
				}
			}
			n := lanes
			if n == 0 {
				n = 4
			}
			for i := 0; i < n; i++ {
				i := i
				spawn(i%max(lanes, 1), fmt.Sprintf("w%d", i), func(p *Proc) {
					p.Sleep(Duration(i+1) * Microsecond)
				}, false)
				spawn(i%max(lanes, 1), fmt.Sprintf("d%d", i), func(p *Proc) {
					NewQueue[int](s).Pop(p) // daemon parked forever
				}, true)
			}
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}
			waitGoroutines(t, base, "normal run")
		})
	}
}

// TestNoGoroutineLeakAfterDeadlock: a deadlocked run still reports the
// typed *DeadlockError and unwinds the stuck processes.
func TestNoGoroutineLeakAfterDeadlock(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(9)
	q := NewQueue[int](s)
	s.Spawn("stuck", func(p *Proc) { q.Pop(p) })
	err := s.Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("err = %v, want *DeadlockError", err)
	}
	waitGoroutines(t, base, "deadlock run")
}
