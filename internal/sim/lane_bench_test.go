package sim

import (
	"runtime"
	"testing"
)

// Lane-kernel benchmarks: host-time throughput of the windowed parallel
// kernel. LaneLocal measures lane-confined event execution (the common
// case), LaneCross forces every chain hop through the staged outbox
// merge, and LaneSerial is the single-worker degenerate schedule — the
// number the lanes=1 regression gate watches.

// benchLaneChains drives ~b.N events through an n-lane kernel. Each of
// the `lanes` chains self-posts fine-grained local events and, every
// localPerHop events, hops to the next lane at exactly the lookahead
// bound — so cross-lane traffic exercises the outbox staging and the
// canonical window merge.
func benchLaneChains(b *testing.B, lanes, workers, localPerHop int) {
	const lookahead = 4 * Microsecond
	s := New(1)
	s.ConfigureLanes(lanes, workers, lookahead, false)
	per := b.N / lanes
	if per < 1 {
		per = 1
	}
	type chain struct {
		ln, left int
		step     func()
	}
	for i := 0; i < lanes; i++ {
		c := &chain{ln: i, left: per}
		c.step = func() {
			c.left--
			if c.left <= 0 {
				return
			}
			if localPerHop == 0 || c.left%(localPerHop+1) == 0 {
				src := c.ln
				c.ln = (c.ln + 1) % lanes
				s.AtFrom(src, c.ln, lookahead, c.step)
				return
			}
			s.AtFrom(c.ln, c.ln, Microsecond, c.step)
		}
		s.AtFrom(i, i, 0, c.step)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkLaneLocalThroughput(b *testing.B) {
	benchLaneChains(b, 8, runtime.GOMAXPROCS(0), 1<<30)
}

func BenchmarkLaneCrossTraffic(b *testing.B) {
	benchLaneChains(b, 8, runtime.GOMAXPROCS(0), 0)
}

func BenchmarkLaneSerialDegenerate(b *testing.B) {
	benchLaneChains(b, 8, 1, 3)
}
