// Lane mode: a conservatively synchronized parallel extension of the
// sequential kernel in sim.go.
//
// In lane mode the simulation is partitioned into per-node event lanes.
// Each lane is a complete miniature of the legacy kernel — its own event
// heap, clock, FIFO sequence counter, parked set, and deterministic
// random stream — and the lanes execute in bounded time windows under a
// conservative lookahead rule:
//
//	window k executes every event with t in [T_k, H_k), where T_k is
//	the minimum pending event time across all lanes and
//	H_k = min(T_k + lookahead, next serial event time).
//
// The lookahead bound is the minimum cross-lane interaction delay (the
// fabric's one-way wire latency): an event executing at t < H can only
// schedule work on another lane at t' >= t + lookahead >= H, so events
// inside one window are causally independent across lanes and may run
// concurrently. Cross-lane insertions made during a window are staged in
// per-source outboxes and merged at the window barrier in the canonical
// order (virtual time, then source lane id, then source insertion
// order); destination sequence numbers are assigned in that merge order,
// so the resulting schedule is a pure function of the simulation inputs
// — independent of GOMAXPROCS, the number of worker slots, and host
// scheduling. lanes=1 (one worker slot) executes the identical windowed
// schedule serially and is the degenerate case of the same algorithm,
// which is what makes "lanes=1 vs lanes=N bit-identical" hold by
// construction.
//
// Within a window at most `workers` lanes execute concurrently (a
// counting semaphore); within one lane the legacy baton discipline is
// preserved — exactly one goroutine of that lane runs at a time, with
// control handed through unbuffered channels. Those channel operations,
// plus the window barrier channels, establish every happens-before edge
// the Go memory model needs: state is either lane-confined or crosses
// lanes through the staged merge.
//
// Relaxed regime: crash-stop recovery intentionally reaches across nodes
// (inbox drains, link resets, buddy restores), which cannot satisfy the
// lookahead rule. When a run arms a crash plan the kernel switches to
// the relaxed regime: the same per-lane structure and windowed clock,
// but a single worker slot and clamped (rather than rejected) cross-lane
// insertions. Serial execution makes the schedule deterministic for any
// requested lane count, so the bit-identity guarantee still holds —
// crash runs are simply not parallelized.
package sim

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sort"
	"time"
)

// churnYield is the host-scheduling perturbation used by SetWindowChurn.
func churnYield() { runtime.Gosched() }

// LookaheadError reports a cross-lane event insertion that violates the
// conservative lookahead bound in the strict (parallel) regime.
type LookaheadError struct {
	Src, Dst int
	T        Time // requested event time
	Horizon  Time // current window horizon
}

func (e *LookaheadError) Error() string {
	return fmt.Sprintf("sim: cross-lane event %d->%d at t=%v violates lookahead (window horizon %v)",
		e.Src, e.Dst, e.T, e.Horizon)
}

// xev is a cross-lane event staged in a source lane's outbox during a
// window. Outbox append order is the source-local tie-break: the merge
// sorts by (t, srcLane, append index).
type xev struct {
	t   Time
	dst int
	p   *Proc
	fn  func()
}

// SyncHist is a log2-bucketed histogram of host-time lane synchronization
// latencies (the wait between a lane finishing one window and starting
// its next), using the same bucket scheme as internal/obs: bucket i holds
// values v with bits.Len64(v) == i. sim cannot import obs, so the bucket
// counts are merged into an obs histogram by the caller.
type SyncHist struct {
	Count, Sum, Min, Max int64
	Buckets              [65]int64
}

func (h *SyncHist) observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(uint64(v))]++
}

func (h *SyncHist) merge(o *SyncHist) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i, n := range o.Buckets {
		h.Buckets[i] += n
	}
}

// LaneStat is one lane's utilization record: host time spent executing
// windows (busy) vs waiting between windows (stall), with window and
// event tallies. Utilization is BusyNs/(BusyNs+StallNs).
type LaneStat struct {
	Lane    int
	Windows uint64
	Events  uint64
	BusyNs  int64
	StallNs int64
}

// lane is one per-node event lane: a self-contained sequential kernel
// plus the window-execution plumbing.
type lane struct {
	sim    *Simulator
	id     int
	now    Time
	seq    uint64
	queue  eventHeap
	parked map[*Proc]string
	rng    *rand.Rand
	outbox []xev

	start chan struct{} // window go-signal to the pump

	cancelTick int // lane-local event count toward the next cancel poll

	// Host-time accounting (observability only; never simulation-visible).
	winStart time.Time
	lastDone time.Time
	ran      bool
	stat     LaneStat
	sync     SyncHist
}

// cancelCheck polls the cancellation hook every cancelEvery lane events
// (lane-local tick, so concurrent lanes never share the counter). It
// reports true once the run is canceled — by this lane's poll or any
// other's — at which point the lane abandons the rest of its window and
// reaches the window barrier so the coordinator can tear the run down.
func (ln *lane) cancelCheck() bool {
	s := ln.sim
	if s.canceled.Load() {
		return true
	}
	ln.cancelTick++
	if ln.cancelTick < s.cancelEvery {
		return false
	}
	ln.cancelTick = 0
	if err := s.cancelFn(); err != nil {
		s.cancelOnce.Do(func() { s.cancelErr = err })
		s.canceled.Store(true)
		return true
	}
	return false
}

// push enqueues e into this lane at absolute time t (clamped to the
// lane's clock), assigning the lane-local FIFO sequence number.
func (ln *lane) push(t Time, e event) {
	if t < ln.now {
		t = ln.now
	}
	ln.seq++
	e.t = t
	e.seq = ln.seq
	ln.queue.push(e)
}

// splitmix64 expands one root seed into independent per-lane seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d4b33b24dc74d9
	return x ^ (x >> 31)
}

// ConfigureLanes switches s into lane mode with n per-node lanes,
// executing at most workers lanes concurrently per window, under the
// given conservative lookahead bound (the minimum cross-lane event
// delay; typically the fabric's one-way latency). relaxed selects the
// serialized regime used under crash plans: cross-lane insertions are
// clamped instead of rejected and workers is forced to 1.
//
// Must be called before any process is spawned and before Run. Lane ids
// are 0..n-1; the runtime wires lane i to simulated node i.
func (s *Simulator) ConfigureLanes(n, workers int, lookahead Duration, relaxed bool) {
	if s.ran || s.running {
		panic("sim: ConfigureLanes after Run")
	}
	if s.nextID != 0 || s.queue.len() > 0 {
		panic("sim: ConfigureLanes after events or processes exist")
	}
	if n < 1 {
		panic("sim: ConfigureLanes needs at least one lane")
	}
	if lookahead <= 0 {
		panic("sim: ConfigureLanes needs a positive lookahead")
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if relaxed {
		workers = 1
	}
	seed := s.rng.Int63()
	s.lanes = make([]*lane, n)
	for i := range s.lanes {
		s.lanes[i] = &lane{
			sim:    s,
			id:     i,
			parked: make(map[*Proc]string),
			rng:    rand.New(rand.NewSource(int64(splitmix64(uint64(seed) + uint64(i))))),
			start:  make(chan struct{}, 1),
		}
		s.lanes[i].stat.Lane = i
	}
	s.workers = workers
	s.lookahead = lookahead
	s.relaxed = relaxed
	s.laneSem = make(chan struct{}, workers)
	s.winDone = make(chan struct{}, n)
}

// Lanes returns the number of configured lanes (0 in legacy mode).
func (s *Simulator) Lanes() int { return len(s.lanes) }

// LaneWorkers returns the configured worker-slot count (0 in legacy mode).
func (s *Simulator) LaneWorkers() int { return s.workers }

// Lookahead returns the configured lookahead bound (0 in legacy mode).
func (s *Simulator) Lookahead() Duration { return s.lookahead }

// Relaxed reports whether lane mode runs in the serialized relaxed regime.
func (s *Simulator) Relaxed() bool { return s.relaxed }

// LaneWindows returns the number of executed time windows.
func (s *Simulator) LaneWindows() uint64 { return s.windows }

// LaneStats returns per-lane utilization records (nil in legacy mode).
// Call after Run.
func (s *Simulator) LaneStats() []LaneStat {
	if s.lanes == nil {
		return nil
	}
	out := make([]LaneStat, len(s.lanes))
	for i, ln := range s.lanes {
		out[i] = ln.stat
	}
	return out
}

// LaneSyncHist returns the merged lane synchronization-latency histogram
// (host nanoseconds a lane waited between finishing one window and
// starting the next). Call after Run.
func (s *Simulator) LaneSyncHist() SyncHist {
	var h SyncHist
	for _, ln := range s.lanes {
		h.merge(&ln.sync)
	}
	return h
}

// SetWindowChurn enables host-scheduling churn at window starts (a burst
// of runtime.Gosched calls in every lane pump). Test hook: it perturbs
// the host interleaving of lanes without touching virtual time, so a
// determinism test can assert that results are interleaving-independent.
func (s *Simulator) SetWindowChurn(on bool) { s.churn = on }

// NowOn returns lane ln's clock. It is only safe to call for the lane
// the caller is executing on (lane-confined state, like the clock, must
// not be read across lanes); in legacy mode it returns the global clock.
func (s *Simulator) NowOn(ln int) Time {
	if s.lanes == nil {
		return s.now
	}
	return s.lanes[ln].now
}

// RandOn returns lane ln's deterministic random stream (the global
// stream in legacy mode). Like NowOn it is lane-confined.
func (s *Simulator) RandOn(ln int) *rand.Rand {
	if s.lanes == nil {
		return s.rng
	}
	return s.lanes[ln].rng
}

// Lane returns the lane id p is bound to (-1 in legacy mode).
func (p *Proc) Lane() int {
	if p.lane == nil {
		return -1
	}
	return p.lane.id
}

// Rand returns the deterministic random stream of p's lane (the global
// stream in legacy mode).
func (p *Proc) Rand() *rand.Rand {
	if p.lane == nil {
		return p.sim.rng
	}
	return p.lane.rng
}

// SpawnOn creates a process bound to lane ln. Processes may only be
// spawned onto a lane before Run or from that lane's own context.
func (s *Simulator) SpawnOn(ln int, name string, fn func(p *Proc)) *Proc {
	return s.spawnOn(ln, name, fn, false)
}

// SpawnDaemonOn is SpawnOn for daemons (see SpawnDaemon).
func (s *Simulator) SpawnDaemonOn(ln int, name string, fn func(p *Proc)) *Proc {
	return s.spawnOn(ln, name, fn, true)
}

// AtFrom schedules fn to run d after lane src's current time, on lane
// dst. Same-lane calls are ordinary lane-local events. Cross-lane calls
// during a window are staged in src's outbox and merged canonically at
// the window barrier; in the strict regime they must respect the
// lookahead bound (t >= window horizon) or the kernel panics with a
// *LookaheadError. In legacy mode it is equivalent to At.
func (s *Simulator) AtFrom(src, dst int, d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	if s.lanes == nil {
		s.schedule(s.now+Time(d), fn)
		return
	}
	from := s.lanes[src]
	t := from.now + Time(d)
	s.laneInsert(from, dst, t, event{fn: fn})
}

// laneInsert routes an event to lane dst with origin lane src.
func (s *Simulator) laneInsert(src *lane, dst int, t Time, e event) {
	if src.id == dst {
		src.push(t, e)
		return
	}
	if !s.running {
		// Single-threaded setup: insert directly.
		s.lanes[dst].push(t, e)
		return
	}
	if s.relaxed {
		// Serialized regime: one lane executes at a time, so a direct
		// clamped insertion is race-free and deterministic.
		s.lanes[dst].push(t, e)
		return
	}
	if t < s.horizon {
		panic(&LookaheadError{Src: src.id, Dst: dst, T: t, Horizon: s.horizon})
	}
	src.outbox = append(src.outbox, xev{t: t, dst: dst, p: e.p, fn: e.fn})
}

// AtSerial schedules fn to run as a serial event d after the serial
// clock (simulation start, or the current serial event's time when
// called from one). Serial events execute at a window boundary with
// every lane quiesced — the one context that may touch any lane's state
// (crash injection, node restart, link resets). In legacy mode it is
// equivalent to At.
func (s *Simulator) AtSerial(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	if s.lanes == nil {
		s.schedule(s.now+Time(d), fn)
		return
	}
	t := s.serialNow + Time(d)
	if t < s.serialNow {
		t = s.serialNow
	}
	s.serialSeq++
	s.serialQ.push(event{t: t, seq: s.serialSeq, fn: fn})
}

// laneOutcome reports why a lane schedLoop stopped.
type laneOutcome int

const (
	laneResumed laneOutcome = iota
	laneHandedOff
	laneWindowDone
)

// schedLoop drains lane events with t < the current window horizon on
// the calling goroutine, with the same baton discipline as the legacy
// schedLoop. When the lane's window is exhausted, a nil self returns
// laneWindowDone (the pump signals the barrier); a process self signals
// the barrier itself and blocks until a later window resumes it.
func (ln *lane) schedLoop(self *Proc) laneOutcome {
	s := ln.sim
	for ln.queue.len() > 0 && ln.queue.ev[0].t < s.horizon {
		if s.cancelFn != nil && ln.cancelCheck() {
			// Canceled: abandon the rest of the window and fall through to
			// the barrier below; the coordinator tears the run down once
			// every active lane has reached it.
			break
		}
		ev := ln.queue.pop()
		ln.now = ev.t
		ln.stat.Events++
		if ev.p == nil {
			ev.fn()
			continue
		}
		q := ev.p
		delete(ln.parked, q)
		if q == self {
			return laneResumed
		}
		q.resume <- struct{}{}
		if self == nil {
			return laneHandedOff
		}
		<-self.resume
		if s.aborting {
			// The wake came from teardown, not a window: unwind.
			panic(abortUnwind{})
		}
		return laneResumed
	}
	if self == nil {
		return laneWindowDone
	}
	s.laneDone(ln)
	<-self.resume
	if s.aborting {
		panic(abortUnwind{})
	}
	return laneResumed
}

// pump is the per-lane window driver: it waits for the coordinator's
// go-signal and executes the lane's share of the window. If the baton
// hands off to one of the lane's processes mid-window, that process (not
// the pump) reaches the window barrier.
func (ln *lane) pump() {
	for range ln.start {
		now := time.Now()
		if ln.ran {
			stall := now.Sub(ln.lastDone).Nanoseconds()
			ln.stat.StallNs += stall
			ln.sync.observe(stall)
		}
		ln.ran = true
		ln.winStart = now
		ln.stat.Windows++
		if ln.sim.relaxed {
			// One lane executes at a time in the relaxed regime, so the
			// "current lane" is well-defined and legacy At/Now keep
			// working for the crash-recovery paths that rely on them.
			ln.sim.cur = ln
		}
		if ln.sim.churn {
			for i := 0; i <= ln.id&3; i++ {
				churnYield()
			}
		}
		if ln.schedLoop(nil) == laneWindowDone {
			ln.sim.laneDone(ln)
		}
	}
}

// laneDone marks ln's window complete: accounts busy time, releases the
// worker slot, and signals the coordinator's barrier. Called by
// whichever goroutine of the lane exhausted the window.
func (s *Simulator) laneDone(ln *lane) {
	now := time.Now()
	ln.stat.BusyNs += now.Sub(ln.winStart).Nanoseconds()
	ln.lastDone = now
	<-s.laneSem
	s.winDone <- struct{}{}
}

const maxTime = Time(int64(^uint64(0) >> 1))

// runLanes is Run's body in lane mode: the window coordinator.
func (s *Simulator) runLanes() error {
	for i := range s.lanes {
		go s.lanes[i].pump()
	}
	for {
		// Next window start: the minimum pending virtual time anywhere.
		T, st := maxTime, maxTime
		for _, ln := range s.lanes {
			if ln.queue.len() > 0 && ln.queue.ev[0].t < T {
				T = ln.queue.ev[0].t
			}
		}
		if s.serialQ.len() > 0 {
			st = s.serialQ.ev[0].t
		}
		if T == maxTime && st == maxTime {
			break // drained
		}
		if st <= T {
			// Serial event: runs alone, with every lane quiesced and
			// advanced to the serial instant.
			ev := s.serialQ.pop()
			s.serialNow = ev.t
			for _, ln := range s.lanes {
				if ln.now < ev.t {
					ln.now = ev.t
				}
			}
			s.cur = nil
			s.serialCtx = true
			ev.fn()
			s.serialCtx = false
			continue
		}
		H := T + Time(s.lookahead)
		if H < T {
			H = maxTime // overflow guard
		}
		if st < H {
			H = st
		}
		s.horizon = H
		active := 0
		if s.relaxed {
			// A running lane may push directly into an undispatched
			// lane's heap, so take the (single) worker token before
			// inspecting each lane: holding it means no lane runs.
			for _, ln := range s.lanes {
				s.laneSem <- struct{}{}
				if ln.queue.len() > 0 && ln.queue.ev[0].t < H {
					active++
					ln.start <- struct{}{}
				} else {
					<-s.laneSem
				}
			}
		} else {
			// Strict regime: windows only mutate foreign heaps through
			// the staged outboxes, so the scan is race-free.
			for _, ln := range s.lanes {
				if ln.queue.len() > 0 && ln.queue.ev[0].t < H {
					active++
					s.laneSem <- struct{}{} // bounds concurrent lanes to workers
					ln.start <- struct{}{}
				}
			}
		}
		for i := 0; i < active; i++ {
			<-s.winDone
		}
		s.windows++
		s.mergeOutboxes()
		if s.canceled.Load() {
			// A lane's poll canceled the run. All lanes are quiesced at the
			// barrier; capture the cancel instant before teardown.
			err := &CanceledError{Cause: s.cancelErr, At: s.maxLaneNow()}
			s.teardownLanes()
			return err
		}
	}
	var err error
	if s.live > 0 {
		var parked []string
		for _, ln := range s.lanes {
			for p, reason := range ln.parked {
				if p.daemon {
					continue
				}
				parked = append(parked, p.name+": "+reason)
			}
		}
		sort.Strings(parked)
		err = &DeadlockError{Parked: parked}
	}
	s.teardownLanes()
	return err
}

// maxLaneNow is the maximum clock across lanes and the serial queue — the
// natural "current time" of a quiesced lane-mode simulation.
func (s *Simulator) maxLaneNow() Time {
	t := s.serialNow
	for _, ln := range s.lanes {
		if ln.now > t {
			t = ln.now
		}
	}
	return t
}

// teardownLanes ends a lane-mode run: it marks the run finished, stops
// the per-lane pump goroutines, and sequentially unwinds every process
// goroutine still blocked on its resume channel (parked processes and
// daemons alike), so a completed lane run leaks nothing. All lanes are
// quiesced at the window barrier when it is called, so the plain-field
// writes are ordered by the barrier receives and the per-proc resume
// sends that follow.
func (s *Simulator) teardownLanes() {
	s.finished = true
	s.aborting = true
	for _, ln := range s.lanes {
		close(ln.start)
	}
	s.unwindAll()
}

// mergeOutboxes applies every cross-lane event staged during the window
// in the canonical order: virtual time, then source lane id, then source
// insertion order. Destination sequence numbers are assigned in exactly
// this order, making the merged schedule independent of how the window's
// lanes interleaved on the host.
func (s *Simulator) mergeOutboxes() {
	buf := s.mergeBuf[:0]
	for _, ln := range s.lanes {
		if len(ln.outbox) > 0 {
			buf = append(buf, ln.outbox...)
			for i := range ln.outbox {
				ln.outbox[i] = xev{}
			}
			ln.outbox = ln.outbox[:0]
		}
	}
	// Stable sort on t alone: entries were appended in (srcLane,
	// insertion-order) sequence, which stability preserves within ties.
	sort.SliceStable(buf, func(i, j int) bool { return buf[i].t < buf[j].t })
	for i := range buf {
		x := &buf[i]
		s.lanes[x.dst].push(x.t, event{p: x.p, fn: x.fn})
		buf[i] = xev{}
	}
	s.mergeBuf = buf[:0]
}
