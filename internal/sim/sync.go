package sim

// Mutex is a virtual-time mutual-exclusion lock with FIFO hand-off.
// It models a pthread mutex inside one simulated SMP node.
type Mutex struct {
	sim     *Simulator
	owner   *Proc
	waiters []*Proc
}

// NewMutex creates a mutex bound to s.
func NewMutex(s *Simulator) *Mutex { return &Mutex{sim: s} }

// Lock blocks p until it owns the mutex.
func (m *Mutex) Lock(p *Proc) {
	if m.owner == nil {
		m.owner = p
		return
	}
	if m.owner == p {
		panic("sim: recursive Mutex.Lock by " + p.name)
	}
	m.waiters = append(m.waiters, p)
	p.park("mutex")
}

// Unlock releases the mutex and hands it to the oldest waiter, if any.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic("sim: Mutex.Unlock by non-owner " + p.name)
	}
	if len(m.waiters) == 0 {
		m.owner = nil
		return
	}
	next := m.waiters[0]
	m.waiters = m.waiters[1:]
	m.owner = next
	m.sim.wake(next)
}

// TryLock acquires the mutex without blocking and reports success.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.owner != nil {
		return false
	}
	m.owner = p
	return true
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// Cond is a virtual-time condition variable associated with a Mutex.
type Cond struct {
	mu      *Mutex
	waiters []*Proc
}

// NewCond creates a condition variable using mu for its monitor.
func NewCond(mu *Mutex) *Cond { return &Cond{mu: mu} }

// Wait atomically releases the mutex, parks p, and re-acquires the mutex
// once p is signalled. The caller must hold the mutex.
func (c *Cond) Wait(p *Proc) {
	if c.mu.owner != p {
		panic("sim: Cond.Wait without mutex held")
	}
	c.waiters = append(c.waiters, p)
	c.mu.Unlock(p)
	p.park("cond")
	c.mu.Lock(p)
}

// Signal wakes the oldest waiter, if any. The caller should hold the mutex.
func (c *Cond) Signal() {
	if len(c.waiters) == 0 {
		return
	}
	w := c.waiters[0]
	c.waiters = c.waiters[1:]
	c.mu.sim.wake(w)
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		c.mu.sim.wake(w)
	}
	c.waiters = nil
}

// Semaphore is a counting semaphore in virtual time.
type Semaphore struct {
	sim     *Simulator
	n       int
	waiters []*Proc
}

// NewSemaphore creates a semaphore with n initial permits.
func NewSemaphore(s *Simulator, n int) *Semaphore {
	return &Semaphore{sim: s, n: n}
}

// Acquire takes one permit, blocking p while none are available.
func (s *Semaphore) Acquire(p *Proc) {
	if s.n > 0 {
		s.n--
		return
	}
	s.waiters = append(s.waiters, p)
	p.park("semaphore")
}

// Release returns one permit, waking the oldest waiter if any.
func (s *Semaphore) Release() {
	if len(s.waiters) > 0 {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.sim.wake(w)
		return
	}
	s.n++
}

// Queue is an unbounded FIFO whose Pop blocks in virtual time. Push may
// be called from any simulation context, including event callbacks, which
// makes it the natural mailbox between the network and a node's
// communication thread.
type Queue[T any] struct {
	sim     *Simulator
	items   []T
	waiters []*Proc
}

// NewQueue creates an empty queue bound to s.
func NewQueue[T any](s *Simulator) *Queue[T] { return &Queue[T]{sim: s} }

// Push appends v and wakes one blocked Pop, if any.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	if len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.sim.wake(w)
	}
}

// Pop removes and returns the oldest item, blocking p until one exists.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.waiters = append(q.waiters, p)
		p.park("queue")
	}
	v := q.items[0]
	q.items = q.items[1:]
	// A Push wakes only one waiter; if items remain and more waiters
	// exist (multiple Pushes raced with parked Pops), cascade the wake.
	if len(q.items) > 0 && len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		q.sim.wake(w)
	}
	return v
}

// TryPop removes and returns the oldest item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len reports the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Gate is a one-shot event: Wait blocks until Open is called, after
// which all current and future waiters pass immediately. It is the
// natural primitive for "page fetch complete" and "barrier departure"
// notifications raised by a communication thread.
type Gate struct {
	sim     *Simulator
	open    bool
	waiters []*Proc
}

// NewGate creates a closed gate.
func NewGate(s *Simulator) *Gate { return &Gate{sim: s} }

// Wait blocks p until the gate opens (or returns at once if it has).
func (g *Gate) Wait(p *Proc) {
	if g.open {
		return
	}
	g.waiters = append(g.waiters, p)
	p.park("gate")
}

// Open releases all waiters and lets future Waits pass. Idempotent.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	for _, p := range g.waiters {
		g.sim.wake(p)
	}
	g.waiters = nil
}

// Opened reports whether the gate has been opened.
func (g *Gate) Opened() bool { return g.open }

// WaitGroup counts outstanding activities in virtual time.
type WaitGroup struct {
	sim     *Simulator
	n       int
	waiters []*Proc
}

// NewWaitGroup creates a wait group bound to s.
func NewWaitGroup(s *Simulator) *WaitGroup { return &WaitGroup{sim: s} }

// Add adds delta to the counter, waking waiters when it reaches zero.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		for _, p := range w.waiters {
			w.sim.wake(p)
		}
		w.waiters = nil
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait blocks p until the counter is zero.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.park("waitgroup")
}
