// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a set of cooperating processes (Proc) in virtual
// time. Exactly one goroutine runs at any instant: either the current
// holder of the scheduler baton or the single currently-running process.
// Control is handed off through unbuffered channels, which also
// establishes the happens-before edges that make cross-process data
// access race-free without further locking.
//
// There is no dedicated scheduler goroutine. Whichever goroutine holds
// the baton drains the event queue; waking a process transfers the baton
// to it with one channel send, and a process that parks becomes the
// scheduler itself. A process whose own wake-up is the next event (the
// Sleep fast path) therefore resumes without any channel operation.
//
// The event queue is a hand-rolled binary heap of event values — no
// container/heap interface boxing, no per-event heap allocation — and
// process wake-ups are encoded as a field of the event rather than a
// closure, so the steady-state Sleep/handoff path allocates nothing.
//
// All simulation objects (Mutex, Cond, Semaphore, Queue, CPU) block in
// virtual time, never in host time. Event ties are broken FIFO by a
// monotonically increasing sequence number, so a simulation with a fixed
// seed is fully reproducible.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Time is an absolute instant in virtual nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient virtual-time units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports d as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", d.Micros())
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4fs", d.Seconds())
	}
}

// Seconds reports t as a floating-point number of seconds since start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return Duration(t).String() }

// event is a scheduled occurrence, stored by value in the heap. Exactly
// one of p and fn is set: p is a process to resume (the allocation-free
// encoding of a wake-up), fn is a callback that runs on the baton
// holder's goroutine and must not block.
type event struct {
	t   Time
	seq uint64
	p   *Proc
	fn  func()
}

// eventHeap is a binary min-heap of events ordered by (t, seq). Events
// are values in a reusable slice: pushing never allocates in steady
// state, and popped slots are zeroed so fn closures and Proc pointers
// are not retained through the backing array.
type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

func (h *eventHeap) less(i, j int) bool {
	if h.ev[i].t != h.ev[j].t {
		return h.ev[i].t < h.ev[j].t
	}
	return h.ev[i].seq < h.ev[j].seq
}

func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev[n] = event{} // clear the slot: do not leak fn/p past the pop
	h.ev = h.ev[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return top
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.ev)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.ev[i], h.ev[m] = h.ev[m], h.ev[i]
		i = m
	}
}

// DeadlockError is returned by Run when the event queue drains while
// processes are still parked: no event can ever wake them again.
type DeadlockError struct {
	// Parked lists "name: reason" for every process still blocked.
	Parked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock, %d process(es) parked: %s",
		len(e.Parked), strings.Join(e.Parked, "; "))
}

// ErrCanceled matches (via errors.Is) every *CanceledError a canceled
// run returns.
var ErrCanceled = errors.New("sim: run canceled")

// CanceledError is returned by Run when the cancellation hook installed
// with SetCancel fired: the event loop stopped at a poll point, every
// process goroutine was unwound, and the hook's cause is carried here.
type CanceledError struct {
	// Cause is the non-nil error the cancel hook returned.
	Cause error
	// At is the virtual time the cancellation was detected (the maximum
	// lane clock in lane mode).
	At Time
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: run canceled at %v: %v", e.At, e.Cause)
}

// Unwrap exposes the hook's cause to errors.Is/As chains.
func (e *CanceledError) Unwrap() error { return e.Cause }

// Is matches the ErrCanceled sentinel.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// abortUnwind is the internal panic sentinel teardown uses to unwind a
// process goroutine's stack. spawn's wrapper recovers it; it never
// escapes the package.
type abortUnwind struct{}

// DefaultCancelEvery is the event-count granularity of cancellation
// polls when SetCancel is given a non-positive interval.
const DefaultCancelEvery = 2048

// Simulator owns the virtual clock and the event queue.
type Simulator struct {
	now    Time
	seq    uint64
	queue  eventHeap
	done   chan struct{}
	live   int
	nextID int
	parked map[*Proc]string
	rng    *rand.Rand
	ran    bool

	// Cooperative cancellation (SetCancel) and end-of-run teardown.
	// procs registers every spawned process so teardown can unwind the
	// goroutines still blocked on their resume channels; aborting flips
	// once no simulation goroutine runs anymore and is read only after a
	// happens-before edge (a resume send), so a plain bool suffices.
	cancelFn    func() error
	cancelEvery int
	cancelTick  int
	cancelErr   error
	cancelOnce  sync.Once
	canceled    atomic.Bool
	aborting    bool
	procs       []*Proc
	unwound     chan struct{}

	// Lane mode (see lane.go). lanes == nil selects the legacy
	// single-queue kernel above; every field below is inert then.
	lanes     []*lane
	workers   int
	lookahead Duration
	relaxed   bool
	running   bool // Run has started (lane insertions must stage)
	finished  bool // Run has returned
	horizon   Time // current window horizon [written only between windows]
	serialQ   eventHeap
	serialSeq uint64
	serialNow Time
	serialCtx bool  // a serial event is executing (all lanes quiesced)
	cur       *lane // relaxed regime only: the single executing lane
	laneSem   chan struct{}
	winDone   chan struct{}
	windows   uint64
	mergeBuf  []xev
	churn     bool

	// liveMu guards live for lane mode, where processes of different
	// lanes may exit concurrently. Legacy mode is single-threaded but
	// takes the (uncontended) lock too, keeping one code path.
	liveMu sync.Mutex
}

// New creates a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{
		done:    make(chan struct{}),
		parked:  make(map[*Proc]string),
		rng:     rand.New(rand.NewSource(seed)),
		unwound: make(chan struct{}),
	}
}

// SetCancel installs a cooperative cancellation hook, polled from the
// event loop every `every` processed events (DefaultCancelEvery when
// every <= 0). A non-nil return cancels the run: the kernel stops at the
// poll point, unwinds every process goroutine, and Run returns a
// *CanceledError (errors.Is-matchable against ErrCanceled) wrapping the
// hook's cause. Must be called before Run. In lane mode the hook is
// polled concurrently from every lane, so check must be safe for
// concurrent use (a deadline comparison or an atomic flag read).
func (s *Simulator) SetCancel(check func() error, every int) {
	if s.ran || s.running {
		panic("sim: SetCancel after Run")
	}
	if every <= 0 {
		every = DefaultCancelEvery
	}
	s.cancelFn = check
	s.cancelEvery = every
}

// Now returns the current virtual time. In lane mode the global clock
// only exists while no lanes run concurrently: before Run, during a
// serial event, in the relaxed (serialized) regime, and after Run (the
// maximum lane clock). In the strict parallel regime a running lane must
// use Proc.Now or NowOn instead; calling Now there panics.
func (s *Simulator) Now() Time {
	if s.lanes == nil {
		return s.now
	}
	if s.serialCtx {
		return s.serialNow
	}
	if !s.running {
		return 0
	}
	if s.finished {
		var t Time
		for _, ln := range s.lanes {
			if ln.now > t {
				t = ln.now
			}
		}
		if s.serialNow > t {
			t = s.serialNow
		}
		return t
	}
	if s.relaxed {
		return s.curNow()
	}
	panic("sim: Now is ambiguous while lanes run in parallel; use Proc.Now or NowOn")
}

// curNow is the clock of the single currently-executing lane in the
// relaxed regime (the serialized execution makes it well-defined).
func (s *Simulator) curNow() Time {
	if s.cur != nil {
		return s.cur.now
	}
	return s.serialNow
}

// Rand returns the simulator's deterministic random source. It must only
// be used from simulation context (a running Proc or an event callback).
// In the strict lane regime use Proc.Rand or RandOn (per-lane streams).
func (s *Simulator) Rand() *rand.Rand {
	if s.lanes != nil && s.running && !s.finished && !s.relaxed && !s.serialCtx {
		panic("sim: Rand is lane-ambiguous in the parallel regime; use Proc.Rand or RandOn")
	}
	return s.rng
}

// push enqueues e at absolute time t (clamped to now), assigning the
// FIFO tie-break sequence number.
func (s *Simulator) push(t Time, e event) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	e.t = t
	e.seq = s.seq
	s.queue.push(e)
}

// schedule enqueues fn to run at absolute time t (clamped to now).
func (s *Simulator) schedule(t Time, fn func()) {
	s.push(t, event{fn: fn})
}

// At schedules fn to run d from now on the baton holder's goroutine.
// fn must not block; use Spawn for blocking activities.
//
// In lane mode the "current time" needs a context: before Run, At is
// equivalent to AtSerial (the natural meaning for pre-run schedules like
// crash plans); during a serial event or in the relaxed regime it
// schedules onto the current execution context; in the strict parallel
// regime it panics — use AtFrom with an explicit lane.
func (s *Simulator) At(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	if s.lanes != nil {
		if !s.running || s.serialCtx {
			s.AtSerial(d, fn)
			return
		}
		if s.relaxed && s.cur != nil {
			s.cur.push(s.cur.now+Time(d), event{fn: fn})
			return
		}
		if s.finished {
			panic("sim: At after Run")
		}
		panic("sim: At is lane-ambiguous in the parallel regime; use AtFrom")
	}
	s.schedule(s.now+Time(d), fn)
}

// Proc is a simulated process: a goroutine that runs only when the
// scheduler hands it control and blocks only through sim primitives.
type Proc struct {
	sim    *Simulator
	name   string
	id     int
	resume chan struct{}
	exited bool
	daemon bool
	lane   *lane // nil in legacy mode
}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns a unique small integer assigned at Spawn time.
func (p *Proc) ID() int { return p.id }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Simulator { return p.sim }

// Now returns the current virtual time (p's lane clock in lane mode).
func (p *Proc) Now() Time {
	if p.lane != nil {
		return p.lane.now
	}
	return p.sim.now
}

// Spawn creates a process and schedules it to start at the current
// virtual time. It may be called before Run or from simulation context.
func (s *Simulator) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.spawn(name, fn, false)
}

// SpawnDaemon creates a process that does not keep the simulation alive:
// a daemon parked forever (e.g. a communication thread blocked on an
// empty mailbox) is not a deadlock. Its goroutine is unwound when the
// simulation ends, so completed runs leak nothing.
func (s *Simulator) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return s.spawn(name, fn, true)
}

func (s *Simulator) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	if s.lanes != nil {
		// Lane mode: an unqualified spawn binds to lane 0.
		return s.spawnOn(0, name, fn, daemon)
	}
	s.nextID++
	p := &Proc{sim: s, name: name, id: s.nextID, resume: make(chan struct{}), daemon: daemon}
	if !daemon {
		s.live++
	}
	s.procs = append(s.procs, p)
	go func() {
		defer s.procExit(p)
		<-p.resume
		if s.aborting {
			panic(abortUnwind{})
		}
		fn(p)
		p.exited = true
		if !p.daemon {
			s.live--
		}
		// The exiting process holds the baton; keep draining events on
		// this goroutine until the baton moves on or the queue empties.
		switch s.schedLoop(nil) {
		case loopDrained:
			s.done <- struct{}{}
		case loopCanceled:
			// This goroutine detected the cancellation while draining
			// after its own exit: hand control to Run, then confirm the
			// goroutine is finished (no unwinding left to do).
			s.done <- struct{}{}
			s.unwound <- struct{}{}
		}
	}()
	s.push(s.now, event{p: p})
	return p
}

// procExit is the deferred tail of every process goroutine: it recovers
// the teardown sentinel, marks the goroutine gone, and reports to the
// sequential unwinder. Real panics from process bodies pass through.
func (s *Simulator) procExit(p *Proc) {
	r := recover()
	if r == nil {
		return
	}
	if _, ok := r.(abortUnwind); !ok {
		panic(r)
	}
	p.exited = true
	s.unwound <- struct{}{}
}

// checkCancel polls the cancellation hook on the legacy kernel's event
// loop (single-threaded, so the plain tick counter is safe). It reports
// true once the run is canceled.
func (s *Simulator) checkCancel() bool {
	if s.cancelFn == nil {
		return false
	}
	if s.canceled.Load() {
		return true
	}
	s.cancelTick++
	if s.cancelTick < s.cancelEvery {
		return false
	}
	s.cancelTick = 0
	if err := s.cancelFn(); err != nil {
		s.cancelOnce.Do(func() { s.cancelErr = err })
		s.canceled.Store(true)
		return true
	}
	return false
}

// unwindAll wakes every process goroutine still blocked on its resume
// channel — parked processes, parked daemons, processes whose start
// event never fired — one at a time, waiting for each to finish
// unwinding before waking the next, so the kernel's one-runner invariant
// holds through teardown. Callers set s.aborting first; the woken
// goroutine sees it and panics with the abortUnwind sentinel, which
// procExit recovers.
func (s *Simulator) unwindAll() {
	for _, p := range s.procs {
		if p.exited {
			continue
		}
		p.resume <- struct{}{}
		<-s.unwound
	}
}

// spawnOn is spawn's lane-mode body: the process is bound to lane ln and
// its start event, exit drain, and window-barrier participation all
// happen within that lane.
func (s *Simulator) spawnOn(ln int, name string, fn func(p *Proc), daemon bool) *Proc {
	if s.lanes == nil {
		return s.spawn(name, fn, daemon) // legacy: lane hint ignored
	}
	lane := s.lanes[ln]
	s.liveMu.Lock()
	s.nextID++
	id := s.nextID
	if !daemon {
		s.live++
	}
	p := &Proc{sim: s, name: name, id: id, resume: make(chan struct{}), daemon: daemon, lane: lane}
	s.procs = append(s.procs, p)
	s.liveMu.Unlock()
	go func() {
		defer s.procExit(p)
		<-p.resume
		if s.aborting {
			panic(abortUnwind{})
		}
		fn(p)
		p.exited = true
		if !p.daemon {
			s.liveMu.Lock()
			s.live--
			s.liveMu.Unlock()
		}
		// The exiting process holds its lane's baton; keep draining the
		// lane's window on this goroutine and reach the window barrier
		// if the lane is finished.
		if lane.schedLoop(nil) == laneWindowDone {
			s.laneDone(lane)
		}
	}()
	lane.push(lane.now, event{p: p})
	return p
}

// loopOutcome reports why schedLoop stopped draining events.
type loopOutcome int

const (
	// loopResumed: self's wake event fired; the caller continues.
	loopResumed loopOutcome = iota
	// loopHandedOff: the baton moved to another process (self == nil).
	loopHandedOff
	// loopDrained: the queue is empty; the simulation is over.
	loopDrained
	// loopCanceled: the cancellation hook fired; stop executing events.
	loopCanceled
)

// schedLoop drains the event queue on the calling goroutine. Callback
// events run inline; a wake event for another process transfers the
// baton to it (after which a non-nil self blocks until its own wake-up
// arrives, while a nil self returns loopHandedOff); a wake event for
// self returns immediately — the allocation- and channel-free resume
// path.
func (s *Simulator) schedLoop(self *Proc) loopOutcome {
	// cancelFn is immutable once Run starts; hoisting the nil test out
	// of the loop keeps the disabled path at one register-resident
	// branch per event instead of a field load or a function call.
	cancelable := s.cancelFn != nil
	for s.queue.len() > 0 {
		if cancelable && s.checkCancel() {
			s.aborting = true
			return loopCanceled
		}
		ev := s.queue.pop()
		s.now = ev.t
		if ev.p == nil {
			ev.fn()
			continue
		}
		q := ev.p
		delete(s.parked, q)
		if q == self {
			return loopResumed
		}
		q.resume <- struct{}{}
		if self == nil {
			return loopHandedOff
		}
		<-self.resume
		if s.aborting {
			// The wake came from teardown, not the scheduler: unwind.
			panic(abortUnwind{})
		}
		return loopResumed
	}
	return loopDrained
}

// park blocks p until some event wakes it. reason is reported on deadlock.
func (p *Proc) park(reason string) {
	s := p.sim
	if s.aborting {
		// Teardown is unwinding this goroutine and a defer (or the
		// unwind path itself) re-entered the kernel: keep unwinding.
		panic(abortUnwind{})
	}
	if p.lane != nil {
		p.lane.parked[p] = reason
		p.lane.schedLoop(p) // blocks until a later event resumes p
		return
	}
	s.parked[p] = reason
	switch s.schedLoop(p) {
	case loopDrained:
		// The queue drained while p was parked: nothing can ever wake p
		// again. Hand control back to Run (which reports the deadlock or
		// ignores a parked daemon); teardown unwinds this goroutine.
		s.done <- struct{}{}
		<-p.resume // teardown's unwind wake
		panic(abortUnwind{})
	case loopCanceled:
		// p detected the cancellation while holding the baton: hand
		// control to Run, then unwind (procExit reports completion).
		s.done <- struct{}{}
		panic(abortUnwind{})
	}
}

// wakeAt schedules p to be resumed at time t. Exactly one wakeAt must be
// issued per park. In lane mode the wake lands on p's own lane: waking a
// process of another lane is a lane-confinement violation in the strict
// regime (the race detector flags the heap access) and a clamped
// same-heap insertion in the relaxed one.
func (s *Simulator) wakeAt(t Time, p *Proc) {
	if p.lane != nil {
		p.lane.push(t, event{p: p})
		return
	}
	s.push(t, event{p: p})
}

// wake schedules p to be resumed at the current time.
func (s *Simulator) wake(p *Proc) {
	if p.lane != nil {
		p.lane.push(p.lane.now, event{p: p})
		return
	}
	s.wakeAt(s.now, p)
}

// Sleep blocks p for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		return
	}
	p.sim.wakeAt(p.Now()+Time(d), p)
	p.park("sleep")
}

// Yield reschedules p at the current time behind already-pending events,
// letting same-instant events run first.
func (p *Proc) Yield() {
	p.sim.wake(p)
	p.park("yield")
}

// Run executes events until the queue drains. It returns nil when every
// spawned process has exited, a *DeadlockError when processes remain
// parked with no event left to wake them, and a *CanceledError when the
// SetCancel hook fired. In every case the kernel tears its goroutines
// down before returning: parked daemons, deadlocked processes, and
// canceled runs all unwind, so a completed Run leaks nothing.
func (s *Simulator) Run() error {
	if s.ran {
		return fmt.Errorf("sim: Run called twice")
	}
	s.ran = true
	if s.lanes != nil {
		s.running = true
		return s.runLanes()
	}
	if s.schedLoop(nil) == loopHandedOff {
		// The baton is circulating among process goroutines; whichever
		// one drains the queue (or detects cancellation) signals
		// completion.
		<-s.done
		if s.aborting {
			// A process goroutine detected the cancellation; wait for it
			// to finish unwinding before tearing down the rest.
			<-s.unwound
		}
	}
	if s.aborting {
		err := &CanceledError{Cause: s.cancelErr, At: s.now}
		s.unwindAll()
		return err
	}
	var err error
	if s.live > 0 {
		var parked []string
		for p, reason := range s.parked {
			if p.daemon {
				continue
			}
			parked = append(parked, p.name+": "+reason)
		}
		sort.Strings(parked)
		err = &DeadlockError{Parked: parked}
	}
	// Tear down the goroutines the run leaves blocked (parked daemons
	// always; parked processes too on deadlock).
	s.aborting = true
	s.unwindAll()
	return err
}
