// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel drives a set of cooperating processes (Proc) in virtual
// time. Exactly one goroutine runs at any instant: either the scheduler
// or the single currently-running process. Control is handed off through
// unbuffered channels, which also establishes the happens-before edges
// that make cross-process data access race-free without further locking.
//
// All simulation objects (Mutex, Cond, Semaphore, Queue, CPU) block in
// virtual time, never in host time. Event ties are broken FIFO by a
// monotonically increasing sequence number, so a simulation with a fixed
// seed is fully reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Time is an absolute instant in virtual nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenient virtual-time units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports d as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", d.Micros())
	case d < Second:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4fs", d.Seconds())
	}
}

// Seconds reports t as a floating-point number of seconds since start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string { return Duration(t).String() }

// event is a scheduled callback. fn runs on the scheduler goroutine and
// must not block; process wake-ups are events whose fn performs the
// resume/yield handoff.
type event struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// DeadlockError is returned by Run when the event queue drains while
// processes are still parked: no event can ever wake them again.
type DeadlockError struct {
	// Parked lists "name: reason" for every process still blocked.
	Parked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock, %d process(es) parked: %s",
		len(e.Parked), strings.Join(e.Parked, "; "))
}

// Simulator owns the virtual clock and the event queue.
type Simulator struct {
	now    Time
	seq    uint64
	queue  eventHeap
	yield  chan struct{}
	live   int
	nextID int
	parked map[*Proc]string
	rng    *rand.Rand
	ran    bool
}

// New creates a simulator whose random source is seeded with seed.
func New(seed int64) *Simulator {
	return &Simulator{
		yield:  make(chan struct{}),
		parked: make(map[*Proc]string),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source. It must only
// be used from simulation context (a running Proc or an event callback).
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// schedule enqueues fn to run at absolute time t (clamped to now).
func (s *Simulator) schedule(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, &event{t: t, seq: s.seq, fn: fn})
}

// At schedules fn to run d from now on the scheduler goroutine.
// fn must not block; use Spawn for blocking activities.
func (s *Simulator) At(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.schedule(s.now+Time(d), fn)
}

// Proc is a simulated process: a goroutine that runs only when the
// scheduler hands it control and blocks only through sim primitives.
type Proc struct {
	sim    *Simulator
	name   string
	id     int
	resume chan struct{}
	exited bool
	daemon bool
}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// ID returns a unique small integer assigned at Spawn time.
func (p *Proc) ID() int { return p.id }

// Sim returns the owning simulator.
func (p *Proc) Sim() *Simulator { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Spawn creates a process and schedules it to start at the current
// virtual time. It may be called before Run or from simulation context.
func (s *Simulator) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.spawn(name, fn, false)
}

// SpawnDaemon creates a process that does not keep the simulation alive:
// a daemon parked forever (e.g. a communication thread blocked on an
// empty mailbox) is not a deadlock. Its goroutine is abandoned when the
// simulation ends.
func (s *Simulator) SpawnDaemon(name string, fn func(p *Proc)) *Proc {
	return s.spawn(name, fn, true)
}

func (s *Simulator) spawn(name string, fn func(p *Proc), daemon bool) *Proc {
	s.nextID++
	p := &Proc{sim: s, name: name, id: s.nextID, resume: make(chan struct{}), daemon: daemon}
	if !daemon {
		s.live++
	}
	go func() {
		<-p.resume
		fn(p)
		p.exited = true
		if !p.daemon {
			s.live--
		}
		s.yield <- struct{}{}
	}()
	s.schedule(s.now, func() { s.runProc(p) })
	return p
}

// runProc hands control to p and waits until it parks or exits.
// Must be called on the scheduler goroutine (from an event callback).
func (s *Simulator) runProc(p *Proc) {
	p.resume <- struct{}{}
	<-s.yield
}

// park blocks p until some event wakes it. reason is reported on deadlock.
func (p *Proc) park(reason string) {
	s := p.sim
	s.parked[p] = reason
	s.yield <- struct{}{}
	<-p.resume
}

// wakeAt schedules p to be resumed at time t. Exactly one wakeAt must be
// issued per park.
func (s *Simulator) wakeAt(t Time, p *Proc) {
	s.schedule(t, func() {
		delete(s.parked, p)
		s.runProc(p)
	})
}

// wake schedules p to be resumed at the current time.
func (s *Simulator) wake(p *Proc) { s.wakeAt(s.now, p) }

// Sleep blocks p for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		return
	}
	p.sim.wakeAt(p.sim.now+Time(d), p)
	p.park("sleep")
}

// Yield reschedules p at the current time behind already-pending events,
// letting same-instant events run first.
func (p *Proc) Yield() {
	p.sim.wake(p)
	p.park("yield")
}

// Run executes events until the queue drains. It returns nil when every
// spawned process has exited, and a *DeadlockError when processes remain
// parked with no event left to wake them.
func (s *Simulator) Run() error {
	if s.ran {
		return fmt.Errorf("sim: Run called twice")
	}
	s.ran = true
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		s.now = ev.t
		ev.fn()
	}
	if s.live > 0 {
		var parked []string
		for p, reason := range s.parked {
			if p.daemon {
				continue
			}
			parked = append(parked, p.name+": "+reason)
		}
		sort.Strings(parked)
		return &DeadlockError{Parked: parked}
	}
	return nil
}
