package sim

import "testing"

// Simulator-substrate benchmarks: these measure the discrete-event
// kernel's own throughput in host time (events/sec), which bounds how
// large a cluster/workload the reproduction can simulate.

func BenchmarkEventThroughput(b *testing.B) {
	s := New(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			s.At(Microsecond, tick)
		}
	}
	s.At(Microsecond, tick)
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkProcessHandoff(b *testing.B) {
	s := New(1)
	s.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMutexHandoff(b *testing.B) {
	s := New(1)
	mu := NewMutex(s)
	for w := 0; w < 4; w++ {
		s.Spawn("w", func(p *Proc) {
			for i := 0; i < b.N/4; i++ {
				mu.Lock(p)
				p.Sleep(Nanosecond)
				mu.Unlock(p)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkCPUContention(b *testing.B) {
	s := New(1)
	cpu := NewCPU(s, 2, Millisecond)
	for w := 0; w < 4; w++ {
		s.Spawn("w", func(p *Proc) {
			for i := 0; i < b.N/4; i++ {
				cpu.Compute(p, 100*Microsecond)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
