package sim

import (
	"fmt"
	"testing"
)

// laneRing builds a ring of n lanes, each with one process that computes
// (sleeps) and forwards a token to the next lane with delay hop (which
// must respect the lookahead in strict mode). It returns a per-lane
// trace of (virtual time, token value) pairs — the determinism witness.
func laneRing(t *testing.T, n, workers int, lookahead Duration, relaxed, churn bool, rounds int) [][]string {
	t.Helper()
	s := New(42)
	s.ConfigureLanes(n, workers, lookahead, relaxed)
	s.SetWindowChurn(churn)
	traces := make([][]string, n)
	queues := make([]*Queue[int], n)
	for i := 0; i < n; i++ {
		queues[i] = NewQueue[int](s)
	}
	hop := lookahead
	if relaxed {
		hop = lookahead / 2 // deliberately violates lookahead; legal relaxed
	}
	for i := 0; i < n; i++ {
		i := i
		s.SpawnOn(i, fmt.Sprintf("node%d", i), func(p *Proc) {
			for r := 0; r < rounds; r++ {
				v := queues[i].Pop(p)
				// Lane-local work with a deterministic pseudo-random span.
				p.Sleep(Duration(1+p.Rand().Intn(3)) * Microsecond)
				traces[i] = append(traces[i], fmt.Sprintf("%d@%d", v, p.Now()))
				next := (i + 1) % n
				nv := v + 1
				s.AtFrom(i, next, hop, func() { queues[next].Push(nv) })
			}
		})
	}
	// Seed one token per lane so every lane is busy each window.
	for i := 0; i < n; i++ {
		queues[i].Push(i * 1000)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run (workers=%d relaxed=%v): %v", workers, relaxed, err)
	}
	return traces
}

func flatten(tr [][]string) string {
	out := ""
	for i, lane := range tr {
		out += fmt.Sprintf("lane%d:", i)
		for _, e := range lane {
			out += e + ";"
		}
		out += "\n"
	}
	return out
}

// TestLaneDeterminism is the core tentpole property: the canonical
// windowed schedule is identical for one worker slot, many worker
// slots, and many worker slots under host-scheduling churn.
func TestLaneDeterminism(t *testing.T) {
	const n, rounds = 8, 50
	la := 5 * Microsecond
	base := flatten(laneRing(t, n, 1, la, false, false, rounds))
	for _, cfg := range []struct {
		workers int
		churn   bool
	}{{4, false}, {8, false}, {8, true}, {3, true}} {
		got := flatten(laneRing(t, n, cfg.workers, la, false, cfg.churn, rounds))
		if got != base {
			t.Fatalf("workers=%d churn=%v diverged from workers=1:\n--- base ---\n%s--- got ---\n%s",
				cfg.workers, cfg.churn, base, got)
		}
	}
}

// TestLaneRelaxedDeterminism: the relaxed (serialized) regime is
// deterministic for any requested worker count, because workers is
// forced to 1.
func TestLaneRelaxedDeterminism(t *testing.T) {
	const n, rounds = 6, 30
	la := 4 * Microsecond
	base := flatten(laneRing(t, n, 1, la, true, false, rounds))
	got := flatten(laneRing(t, n, 7, la, true, true, rounds))
	if got != base {
		t.Fatalf("relaxed run diverged across requested worker counts:\n%s\nvs\n%s", base, got)
	}
}

// TestLaneSingleLaneDegenerate: one lane with any worker count behaves
// like a plain sequential simulation.
func TestLaneSingleLaneDegenerate(t *testing.T) {
	s := New(1)
	s.ConfigureLanes(1, 4, Microsecond, false)
	var ticks []Time
	s.SpawnOn(0, "p", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(3 * Microsecond)
			ticks = append(ticks, p.Now())
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 10 || ticks[9] != Time(30*Microsecond) {
		t.Fatalf("ticks = %v", ticks)
	}
	if s.Now() != Time(30*Microsecond) {
		t.Fatalf("final Now = %v", s.Now())
	}
}

// TestLaneLookaheadViolation: a cross-lane insertion below the lookahead
// bound panics with a *LookaheadError in the strict regime.
func TestLaneLookaheadViolation(t *testing.T) {
	s := New(3)
	s.ConfigureLanes(2, 2, 10*Microsecond, false)
	var caught error
	s.SpawnOn(0, "violator", func(p *Proc) {
		p.Sleep(Microsecond) // enter a running window
		defer func() {
			if r := recover(); r != nil {
				if le, ok := r.(*LookaheadError); ok {
					caught = le
				}
				// Re-park forever so the kernel sees a clean exit path.
			}
		}()
		s.AtFrom(0, 1, Microsecond, func() {})
	})
	s.SpawnOn(1, "peer", func(p *Proc) { p.Sleep(2 * Microsecond) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if caught == nil {
		t.Fatal("expected a *LookaheadError from a sub-lookahead cross-lane insert")
	}
}

// TestLaneDeadlock: lane mode still reports a global deadlock with the
// parked processes of every lane.
func TestLaneDeadlock(t *testing.T) {
	s := New(9)
	s.ConfigureLanes(3, 3, Microsecond, false)
	g := NewGate(s)
	s.SpawnOn(1, "stuck1", func(p *Proc) { g.Wait(p) })
	s.SpawnOn(2, "stuck2", func(p *Proc) { p.Sleep(Microsecond); g.Wait(p) })
	err := s.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Parked) != 2 {
		t.Fatalf("parked = %v", de.Parked)
	}
}

// TestLaneSerialEvent: AtSerial runs between windows with every lane
// quiesced and advanced to the serial instant.
func TestLaneSerialEvent(t *testing.T) {
	s := New(5)
	s.ConfigureLanes(4, 4, 2*Microsecond, false)
	var at Time
	var lanesNow []Time
	s.AtSerial(50*Microsecond, func() {
		at = s.Now() // serial context: global clock is defined
		for i := 0; i < 4; i++ {
			lanesNow = append(lanesNow, s.NowOn(i))
		}
	})
	for i := 0; i < 4; i++ {
		i := i
		s.SpawnOn(i, fmt.Sprintf("w%d", i), func(p *Proc) {
			for k := 0; k < 30; k++ {
				p.Sleep(3 * Microsecond)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(50*Microsecond) {
		t.Fatalf("serial event ran at %v", at)
	}
	for i, ln := range lanesNow {
		if ln != at {
			t.Fatalf("lane %d clock %v at serial event (want %v)", i, ln, at)
		}
	}
}

// TestLaneStats: executing windows populates utilization counters and
// the sync-latency histogram.
func TestLaneStats(t *testing.T) {
	tr := laneRing(t, 4, 2, 5*Microsecond, false, false, 20)
	_ = tr
}

func TestLaneStatsCounters(t *testing.T) {
	s := New(7)
	s.ConfigureLanes(2, 2, 5*Microsecond, false)
	for i := 0; i < 2; i++ {
		i := i
		s.SpawnOn(i, fmt.Sprintf("w%d", i), func(p *Proc) {
			for k := 0; k < 40; k++ {
				p.Sleep(2 * Microsecond)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	stats := s.LaneStats()
	if len(stats) != 2 {
		t.Fatalf("lane stats: %v", stats)
	}
	for _, st := range stats {
		if st.Windows == 0 || st.Events == 0 {
			t.Fatalf("empty stats for lane %d: %+v", st.Lane, st)
		}
	}
	if s.LaneWindows() == 0 {
		t.Fatal("no windows recorded")
	}
	h := s.LaneSyncHist()
	if h.Count == 0 {
		t.Fatal("no sync-latency samples")
	}
}
