package sim

// CPU models the processors of one simulated SMP node: a pool of slots
// scheduled round-robin with a fixed quantum. A process that wants to
// burn compute time calls Compute; while more runnable processes exist
// than slots, each runs for at most one quantum before re-queueing, which
// approximates an OS time-slicing scheduler. This contention is what
// separates the paper's 1Thread-1CPU configuration (computation and the
// communication thread share one processor) from 1Thread-2CPU.
type CPU struct {
	sim     *Simulator
	slots   int
	quantum Duration
	busy    int
	queue   []*Proc

	// BusyTime accumulates slot-occupancy for utilization reporting.
	BusyTime Duration

	// OnWait, when set, observes the time each process spends queued for
	// a busy slot (the 1Thread-1CPU contention signal). It is a plain
	// func field rather than an interface so the disabled path is a
	// single nil check on the already-slow queueing branch; sim cannot
	// import internal/obs (obs uses sim's time types), so the runtime
	// wires a closure here.
	OnWait func(d Duration)
}

// DefaultQuantum approximates a Linux 2.4-era scheduler time slice.
const DefaultQuantum = 1 * Millisecond

// NewCPU creates a CPU pool with the given number of slots. A quantum of
// zero selects DefaultQuantum.
func NewCPU(s *Simulator, slots int, quantum Duration) *CPU {
	if slots < 1 {
		panic("sim: CPU needs at least one slot")
	}
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	return &CPU{sim: s, slots: slots, quantum: quantum}
}

// Slots returns the number of processors in the pool.
func (c *CPU) Slots() int { return c.slots }

// acquire takes a processor slot, queueing FIFO when all are busy.
func (c *CPU) acquire(p *Proc) {
	if c.busy < c.slots {
		c.busy++
		return
	}
	c.queue = append(c.queue, p)
	if c.OnWait != nil {
		t0 := p.Now()
		p.park("cpu")
		c.OnWait(Duration(p.Now() - t0))
		return
	}
	p.park("cpu")
	// Ownership is transferred by release; busy already accounts for us.
}

// release frees a slot or hands it directly to the oldest waiter.
func (c *CPU) release() {
	if len(c.queue) > 0 {
		next := c.queue[0]
		c.queue = c.queue[1:]
		c.sim.wake(next)
		return // slot stays busy, transferred to next
	}
	c.busy--
}

// Compute charges d of processor time to p, contending with other
// processes for the pool's slots. When the pool is uncontended the whole
// duration is charged in one event; under contention p runs one quantum
// at a time and round-robins with the other runnable processes.
func (c *CPU) Compute(p *Proc, d Duration) {
	for d > 0 {
		c.acquire(p)
		slice := d
		// While every slot is occupied a new arrival would have to queue,
		// so bound the slice by one quantum to keep preemption latency low.
		if c.busy == c.slots && slice > c.quantum {
			slice = c.quantum
		}
		p.Sleep(slice)
		c.BusyTime += slice
		d -= slice
		c.release()
	}
}
