// Package kdsm configures the runtime as the paper's baseline: KDSM, a
// conventional home-based lazy-release-consistency SDSM (Yun et al.,
// IWSDSM'01) with fixed homes and lock-based synchronization. The paper's
// microbenchmarks (Figs. 6 and 7) compare ParADE's hybrid directives
// against this system; everything except the directive lowering and home
// migration is shared with the ParADE runtime, which isolates exactly the
// mechanisms the paper credits for its speedups.
package kdsm

import "parade/internal/core"

// Config returns a KDSM-equivalent configuration: SDSM-mode directive
// lowering (distributed locks, flag-based singles, slot-array
// reductions) and the original fixed-home HLRC protocol.
func Config(nodes, threadsPerNode, cpusPerNode int) core.Config {
	cfg := core.Config{
		Nodes:          nodes,
		ThreadsPerNode: threadsPerNode,
		CPUsPerNode:    cpusPerNode,
		Mode:           core.SDSM,
		HomeMigration:  false,
	}
	return cfg.WithDefaults()
}

// FromParade converts a ParADE configuration into its KDSM counterpart,
// keeping every hardware parameter identical.
func FromParade(cfg core.Config) core.Config {
	cfg.Mode = core.SDSM
	cfg.HomeMigration = false
	return cfg
}

// ConfigCached returns KDSM with its efficient lazy-release lock
// protocol (the contribution of the KDSM paper itself): lock tokens stay
// cached at the releasing node until another node asks.
func ConfigCached(nodes, threadsPerNode, cpusPerNode int) core.Config {
	cfg := Config(nodes, threadsPerNode, cpusPerNode)
	cfg.LockCaching = true
	return cfg
}
