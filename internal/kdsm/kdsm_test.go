package kdsm

import (
	"testing"

	"parade/internal/core"
	"parade/internal/netsim"
)

func TestConfigIsConventionalSDSM(t *testing.T) {
	cfg := Config(4, 2, 2)
	if cfg.Mode != core.SDSM {
		t.Fatalf("mode = %v", cfg.Mode)
	}
	if cfg.HomeMigration {
		t.Fatal("KDSM must use fixed homes")
	}
	if cfg.Nodes != 4 || cfg.ThreadsPerNode != 2 || cfg.CPUsPerNode != 2 {
		t.Fatalf("shape = %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromParadeKeepsHardware(t *testing.T) {
	p := core.Config{Nodes: 8, ThreadsPerNode: 2, Fabric: netsim.TCP(),
		Mode: core.Hybrid, HomeMigration: true}.WithDefaults()
	k := FromParade(p)
	if k.Mode != core.SDSM || k.HomeMigration {
		t.Fatalf("conversion wrong: %+v", k)
	}
	if k.Fabric.Name != p.Fabric.Name || k.Nodes != p.Nodes || k.ShmBytes != p.ShmBytes {
		t.Fatal("hardware parameters changed")
	}
}

func TestKDSMRunsPrograms(t *testing.T) {
	var sum float64
	_, err := core.Run(Config(2, 2, 2), func(m *core.Thread) {
		s := m.Cluster().ScalarVar("x")
		m.Parallel(func(tc *core.Thread) {
			tc.Critical("c", []*core.Scalar{s}, func() { s.Add(tc, 1) })
		})
		m.Parallel(func(tc *core.Thread) {})
		sum = s.Get(m)
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum != 4 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestConfigCached(t *testing.T) {
	cfg := ConfigCached(4, 1, 2)
	if !cfg.LockCaching || cfg.Mode != core.SDSM {
		t.Fatalf("cached config = %+v", cfg)
	}
}
